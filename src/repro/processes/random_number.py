"""Random number (§4.9): output one arbitrary natural number, halt.

Implementation: count the ``T``s of an auxiliary fair random sequence
``c`` (§4.7) up to its first ``F``, then output the count:

    TRUE(c) ⟵ trues ,  FALSE(c) ⟵ falses ,  d ⟵ h(c)

Every natural number is a possible output (choose a ``c`` starting with
that many ``T``s), and exactly one number is ever output (``c`` has an
``F``; the count is then frozen) — unbounded nondeterminism from a
finite description, which is the §4.9 punchline.
"""

from __future__ import annotations

from typing import Optional

from repro.channels.channel import Channel
from repro.core.description import Description, DescriptionSystem
from repro.functions.base import chan
from repro.functions.seq_fns import count_ticks_of
from repro.processes.fair_random import fair_random_descriptions
from repro.processes.process import DescribedProcess
from repro.traces.trace import Trace


def make(d: Optional[Channel] = None) -> DescribedProcess:
    d = d or Channel("d")  # alphabet: all naturals — unconstrained
    c = Channel("c_count", alphabet={"T", "F"}, auxiliary=True)
    descriptions = fair_random_descriptions(c) + [
        Description(chan(d), count_ticks_of(chan(c)),
                    name=f"{d.name} ⟵ h({c.name})"),
    ]
    system = DescriptionSystem(descriptions, channels=[c, d],
                               name="RandomNumber")
    return DescribedProcess(
        "RandomNumber", [c, d], system,
        witness_fn=lambda t: witness(t, c, d),
    )


def witness(t: Trace, c: Channel, d: Channel) -> Optional[Trace]:
    """A smooth solution projecting to the visible trace ``(d, n)``.

    Shape: ``(c,T)^n (c,F) (d,n)`` then fair alternation on ``c``.
    The empty visible trace is *not* a trace of this process: every
    smooth solution contains an ``F`` on ``c``, after which the output
    is forced — the process always outputs exactly one number.
    """
    import itertools

    from repro.channels.event import Event

    if not t.is_known_finite() or t.length() != 1:
        return None
    event = t.item(0)
    if event.channel != d or not isinstance(event.message, int) \
            or event.message < 0:
        return None
    n = event.message

    def gen():
        for _ in range(n):
            yield Event(c, "T")
        yield Event(c, "F")
        yield Event(d, n)
        for bit in itertools.cycle(("T", "F")):
            yield Event(c, bit)

    return Trace.lazy(gen(), name=f"random-number-witness({n})")
