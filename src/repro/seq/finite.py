"""Finite message sequences.

The paper's semantic domain is sequences (of messages, or of
channel/message pairs) under prefix order.  :class:`FiniteSeq` is the
finite fragment: an immutable, hashable, tuple-backed sequence with the
algebra the paper uses — concatenation ``;``, prefix tests, and the
``u pre v`` relation (|v| = |u| + 1).

Infinite sequences live in :mod:`repro.seq.lazy`; both share the
:class:`Seq` interface so the rest of the library is agnostic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterable, Iterator, Optional


class Seq(ABC):
    """A finite or (possibly) infinite sequence.

    The interface deliberately exposes only *prefix-safe* operations:
    indexing, finite prefixes, and bounded iteration.  Whole-sequence
    operations (length, equality) are available only when finiteness is
    known.
    """

    @abstractmethod
    def item(self, i: int) -> Any:
        """The ``i``-th element (0-based).

        Raises ``IndexError`` if the sequence is finite and shorter.
        """

    @abstractmethod
    def take(self, n: int) -> "FiniteSeq":
        """The prefix of length ``min(n, len(self))`` as a finite sequence."""

    @abstractmethod
    def known_length(self) -> Optional[int]:
        """The length if finiteness has been *established*, else ``None``.

        ``None`` means "not known to be finite", not "infinite": a lazy
        sequence reports ``None`` until its generator is exhausted.
        """

    def has_at_least(self, n: int) -> bool:
        """Return ``True`` iff the sequence has at least ``n`` elements.

        May force materialization of the first ``n`` elements.
        """
        return len(self.take(n)) >= n

    def head(self) -> Any:
        """The first element; raises ``IndexError`` on the empty sequence."""
        return self.item(0)

    def iter_upto(self, n: int) -> Iterator[Any]:
        """Iterate over at most the first ``n`` elements."""
        return iter(self.take(n).items)


class FiniteSeq(Seq):
    """An immutable finite sequence of messages."""

    __slots__ = ("items", "_hash")

    def __init__(self, items: Iterable[Any] = ()):
        object.__setattr__(self, "items", tuple(items))
        object.__setattr__(self, "_hash", None)

    @classmethod
    def from_tuple(cls, items: tuple) -> "FiniteSeq":
        """Wrap an already-built tuple without re-copying it.

        The fast constructor for the compiled solver path, which keeps
        sequence values as plain tuples and only boxes them at module
        boundaries.  The caller must not hold other references that
        mutate ``items`` — but tuples are immutable, so any tuple is
        safe to share.
        """
        seq = cls.__new__(cls)
        object.__setattr__(seq, "items", items)
        object.__setattr__(seq, "_hash", None)
        return seq

    def __setattr__(self, *_: Any) -> None:  # pragma: no cover
        raise AttributeError("FiniteSeq is immutable")

    def __reduce__(self):
        # immutable slots defeat default pickling; rebuild through
        # ``__init__`` so finite sequences (and the traces wrapping
        # them) survive process boundaries.  The cached hash is
        # deliberately not shipped: it is recomputed lazily on the
        # other side (hash values are per-process under PYTHONHASHSEED).
        return (type(self), (self.items,))

    # -- Seq interface ---------------------------------------------------

    def item(self, i: int) -> Any:
        if i < 0:
            raise IndexError("sequence indices are natural numbers")
        return self.items[i]

    def take(self, n: int) -> "FiniteSeq":
        if n < 0:
            raise ValueError("prefix length must be nonnegative")
        if n >= len(self.items):
            return self
        return FiniteSeq(self.items[:n])

    def known_length(self) -> int:
        return len(self.items)

    # -- container protocol ----------------------------------------------

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.items)

    def __getitem__(self, i: int) -> Any:
        return self.items[i]

    def __bool__(self) -> bool:
        return bool(self.items)

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, FiniteSeq):
            return self.items == other.items
        return NotImplemented

    def __hash__(self) -> int:
        # The solver memo and CacheStore key paths hash the same
        # sequences thousands of times; recomputing the O(n) tuple
        # hash each call showed up in profiles.  Cache it lazily —
        # ``object.__setattr__`` because ``__setattr__`` is guarded.
        h = self._hash
        if h is None:
            h = hash(("FiniteSeq", self.items))
            object.__setattr__(self, "_hash", h)
        return h

    def __repr__(self) -> str:
        if not self.items:
            return "ε"
        body = " ".join(repr(x) for x in self.items)
        return f"⟨{body}⟩"

    # -- sequence algebra --------------------------------------------------

    def concat(self, other: "FiniteSeq") -> "FiniteSeq":
        """Concatenation — the paper's ``;`` operator."""
        return FiniteSeq(self.items + other.items)

    def __add__(self, other: "FiniteSeq") -> "FiniteSeq":
        if not isinstance(other, FiniteSeq):
            return NotImplemented
        return self.concat(other)

    def append(self, value: Any) -> "FiniteSeq":
        """Extension by a single element (a 1-step extension)."""
        return FiniteSeq(self.items + (value,))

    def drop(self, n: int) -> "FiniteSeq":
        """The suffix after removing the first ``n`` elements."""
        if n < 0:
            raise ValueError("drop count must be nonnegative")
        return FiniteSeq(self.items[n:])

    def is_prefix_of(self, other: Seq) -> bool:
        """Prefix order ``self ⊑ other`` (other may be lazy/infinite)."""
        prefix = other.take(len(self.items))
        return prefix.items == self.items

    def is_proper_prefix_of(self, other: Seq) -> bool:
        """``self ⊑ other`` and ``self ≠ other``."""
        if not self.is_prefix_of(other):
            return False
        return other.has_at_least(len(self.items) + 1)

    def pre(self, other: "FiniteSeq") -> bool:
        """The paper's ``u pre v``: prefix with length exactly one less."""
        return (
            len(other.items) == len(self.items) + 1
            and self.is_prefix_of(other)
        )

    def prefixes(self) -> Iterator["FiniteSeq"]:
        """All prefixes, ascending from ``ε`` to the sequence itself."""
        for n in range(len(self.items) + 1):
            yield self.take(n)

    def proper_prefixes(self) -> Iterator["FiniteSeq"]:
        """All prefixes except the sequence itself."""
        for n in range(len(self.items)):
            yield self.take(n)

    def one_step_extensions(self, alphabet: Iterable[Any]
                            ) -> Iterator["FiniteSeq"]:
        """All ``v`` with ``self pre v`` whose new element is in alphabet."""
        for value in alphabet:
            yield self.append(value)


#: The empty sequence ``ε`` (also the bottom of the sequence cpo).
EMPTY = FiniteSeq()


def fseq(*items: Any) -> FiniteSeq:
    """Convenience constructor: ``fseq(1, 2, 3)`` is ``⟨1 2 3⟩``."""
    return FiniteSeq(items)
