"""Finite and lazy message sequences under prefix order.

The sequence domain of the paper: :class:`~repro.seq.finite.FiniteSeq`
(eager, hashable), :class:`~repro.seq.lazy.LazySeq` (memoized generator,
possibly infinite), the prefix-order cpo
(:class:`~repro.seq.ordering.SequenceCpo`), constructors for the paper's
example sequences (:mod:`repro.seq.builders`) and monotone combinators
(:mod:`repro.seq.combinators`).
"""

from repro.seq.builders import (
    block_b,
    block_b_reversed,
    block_c,
    concat,
    cycle,
    empty,
    from_blocks,
    from_iterable,
    iterate,
    misra_x,
    misra_y,
    misra_z,
    naturals,
    prepend,
    repeat,
    repeat_finite,
    single,
)
from repro.seq.combinators import (
    count_occurrences,
    interleavings,
    is_subsequence,
    pointwise,
    seq_filter,
    seq_map,
    subsequence_positions,
    take_while,
)
from repro.seq.finite import EMPTY, FiniteSeq, Seq, fseq
from repro.seq.lazy import LazySeq, NonProductiveError, as_seq
from repro.seq.packed import (
    pack_seq,
    packed_eq_upto,
    packed_leq,
    packed_leq_upto,
)
from repro.seq.ordering import (
    SEQ_CPO,
    SequenceCpo,
    seq_eq_upto,
    seq_leq,
    seq_leq_upto,
)

__all__ = [
    "EMPTY",
    "FiniteSeq",
    "LazySeq",
    "NonProductiveError",
    "SEQ_CPO",
    "Seq",
    "SequenceCpo",
    "as_seq",
    "block_b",
    "block_b_reversed",
    "block_c",
    "concat",
    "count_occurrences",
    "cycle",
    "empty",
    "from_blocks",
    "from_iterable",
    "fseq",
    "interleavings",
    "is_subsequence",
    "iterate",
    "misra_x",
    "misra_y",
    "misra_z",
    "naturals",
    "pack_seq",
    "packed_eq_upto",
    "packed_leq",
    "packed_leq_upto",
    "pointwise",
    "prepend",
    "repeat",
    "repeat_finite",
    "seq_eq_upto",
    "seq_filter",
    "seq_leq",
    "seq_leq_upto",
    "seq_map",
    "single",
    "subsequence_positions",
    "take_while",
]
