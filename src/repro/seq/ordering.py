"""The prefix order on sequences and the sequence cpo.

Sequences under prefix ordering form a cpo (Fact F1 of the paper, stated
there for traces; the proof is identical for message sequences): the empty
sequence ``ε`` is bottom, and every chain has a lub — for a chain of
finite sequences with unbounded length the lub is the infinite sequence
each of them prefixes, which we realize lazily.

Decidability notes:

* ``seq_leq(a, b)`` is decidable whenever ``a`` is finite (the common case
  throughout the library: smoothness checks compare *finite* values).
* For a lazy ``a``, only the bounded approximation :func:`seq_leq_upto`
  is offered; it is sound for "no" answers at any depth and for "yes"
  answers it certifies agreement up to the depth.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence as PySequence

from repro.order.cpo import Cpo
from repro.order.poset import NotAChainError
from repro.seq.finite import EMPTY, FiniteSeq, Seq, fseq
from repro.seq.lazy import LazySeq


def seq_leq(a: Seq, b: Seq) -> bool:
    """Prefix order ``a ⊑ b``.

    Decidable when ``a`` is known finite (including exhausted lazy
    sequences).  Raises ``ValueError`` when ``a`` is lazy with unknown
    length — use :func:`seq_leq_upto` in that situation.
    """
    length = a.known_length()
    if length is None and isinstance(a, LazySeq):
        # One cheap attempt: force a little and re-check; many lazy
        # sequences used in practice are secretly finite.
        a.take(_FINITENESS_PROBE)
        length = a.known_length()
    if length is None:
        raise ValueError(
            "prefix order with a lazy left operand of unknown length is "
            "undecidable; use seq_leq_upto"
        )
    return a.take(length).is_prefix_of(b)


_FINITENESS_PROBE = 4096
_DEFAULT_STABLE_STEPS = 64


def seq_leq_upto(a: Seq, b: Seq, depth: int) -> bool:
    """Bounded prefix order: ``a.take(depth) ⊑ b`` and, if ``a`` is known
    finite within ``depth``, the exact ``a ⊑ b``.

    A ``False`` answer is always conclusive (``a ⋢ b``).
    """
    front = a.take(depth)
    la = a.known_length()
    if la is not None and la <= depth:
        return a.take(la).is_prefix_of(b)
    return front.is_prefix_of(b)


def seq_eq_upto(a: Seq, b: Seq, depth: int) -> bool:
    """Bounded equality: agree on the first ``depth`` elements and on
    finiteness whenever both lengths are known within ``depth``.

    A ``False`` answer is conclusive; ``True`` is exact when both are
    known finite within the depth, else "no disagreement found".
    """
    fa, fb = a.take(depth), b.take(depth)
    if fa != fb:
        return False
    la, lb = a.known_length(), b.known_length()
    if la is not None and lb is not None:
        return la == lb and a.take(la) == b.take(lb)
    if la is not None and la < depth:
        return False  # a ended early but b kept going
    if lb is not None and lb < depth:
        return False
    return True


class SequenceCpo(Cpo):
    """The cpo of message sequences over an (optional) alphabet.

    Order-level operations treat finite sequences exactly and lazy ones
    through :func:`seq_leq`'s decidability rules.  ``lub_chain`` handles
    materialized finite chains; :meth:`lub_of_chain_fn` realizes the lub
    of a lazily-presented chain as a :class:`LazySeq`.
    """

    def __init__(self, alphabet: Optional[frozenset] = None,
                 name: str = "Seq"):
        self.alphabet = alphabet
        self.name = name

    @property
    def bottom(self) -> FiniteSeq:
        return EMPTY

    def leq(self, x: Any, y: Any) -> bool:
        return seq_leq(_coerce(x), _coerce(y))

    def eq(self, x: Any, y: Any) -> bool:
        a, b = _coerce(x), _coerce(y)
        la, lb = a.known_length(), b.known_length()
        if la is not None and lb is not None:
            return a.take(la) == b.take(lb)
        return super().eq(a, b)

    def eq_upto(self, x: Any, y: Any, depth: int) -> bool:
        return seq_eq_upto(_coerce(x), _coerce(y), depth)

    def leq_upto(self, x: Any, y: Any, depth: int) -> bool:
        return seq_leq_upto(_coerce(x), _coerce(y), depth)

    def lub_chain(self, chain: PySequence[Any]) -> Seq:
        if not chain:
            return EMPTY
        seqs = [_coerce(x) for x in chain]
        if not self.is_ascending(seqs):
            raise NotAChainError("sequence chain does not ascend")
        return seqs[-1]

    def lub_of_chain_fn(self, nth: Callable[[int], FiniteSeq],
                        name: str = "lub",
                        stable_steps: int = _DEFAULT_STABLE_STEPS
                        ) -> LazySeq:
        """The lub of the chain ``nth(0) ⊑ nth(1) ⊑ …`` as a lazy sequence.

        The chain must ascend; each element emitted is drawn from the
        first ``nth(k)`` long enough to contain it.  If the chain's
        lengths are bounded the resulting lazy sequence is finite and its
        generator terminates once the chain stabilizes — detected
        *heuristically* when ``stable_steps`` consecutive chain elements
        add nothing.  Raise ``stable_steps`` for chains that legitimately
        stall for long stretches before growing again.
        """

        def gen():
            emitted = 0
            k = 0
            stable = 0
            current = nth(0)
            while True:
                while len(current) > emitted:
                    yield current[emitted]
                    emitted += 1
                    stable = 0
                k += 1
                nxt = nth(k)
                if not current.is_prefix_of(nxt):
                    raise NotAChainError(
                        f"chain {name!r} does not ascend at index {k}"
                    )
                if len(nxt) == len(current):
                    stable += 1
                    if stable >= stable_steps:
                        return
                current = nxt

        return LazySeq(gen(), name=name)

    def sample(self) -> list[Any]:
        letters = sorted(self.alphabet, key=repr)[:2] if self.alphabet \
            else [0, 1]
        a, b = (letters + letters)[:2]
        return [
            EMPTY,
            fseq(a),
            fseq(b),
            fseq(a, a),
            fseq(a, b),
            fseq(b, a),
            fseq(a, b, a),
        ]


def _coerce(x: Any) -> Seq:
    if isinstance(x, Seq):
        return x
    if isinstance(x, (tuple, list)):
        return FiniteSeq(x)
    raise TypeError(f"{x!r} is not a sequence-domain element")


#: A ready-made unrestricted sequence cpo.
SEQ_CPO = SequenceCpo()
