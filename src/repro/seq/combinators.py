"""Sequence combinators (lazy-aware).

These are the element-level operations out of which the paper's
continuous functions are built: pointwise maps (``2×d``, ``2×d+1``, the
random-bit range map ``R``), subsequence filters (``even``, ``odd``,
``TRUE``, ``FALSE``, ``ZERO``, ``ONE``), pointwise binary operations
(``AND``), and structural helpers (interleaving, subsequence tests).

Every combinator has two faces:

* applied to a :class:`FiniteSeq` it returns a :class:`FiniteSeq`
  eagerly — this is the face the smoothness machinery uses; and
* applied to a lazy sequence it returns a lazy sequence.

All the finite faces are monotone with respect to prefix order (each is
*prefix-stable*: the output on a prefix is a prefix of the output on any
extension), which is what makes the derived trace functions continuous.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.seq.finite import FiniteSeq, Seq
from repro.seq.lazy import LazySeq, NonProductiveError


def seq_map(fn: Callable[[Any], Any], seq: Seq,
            name: str = "map") -> Seq:
    """Pointwise map; preserves length, hence monotone and continuous."""
    if isinstance(seq, FiniteSeq):
        return FiniteSeq(fn(x) for x in seq)

    def gen() -> Iterator[Any]:
        i = 0
        while True:
            try:
                yield fn(seq.item(i))
            except IndexError:
                return
            i += 1

    return LazySeq(gen(), name=name)


def seq_filter(pred: Callable[[Any], bool], seq: Seq,
               name: str = "filter",
               scan_limit: int = 1_000_000) -> Seq:
    """Subsequence of elements satisfying ``pred``.

    Monotone: filtering a prefix yields a prefix of the filtered whole.
    On lazy input, pulls at most ``scan_limit`` source elements between
    successive outputs before raising :class:`NonProductiveError`.
    """
    if isinstance(seq, FiniteSeq):
        return FiniteSeq(x for x in seq if pred(x))

    def gen() -> Iterator[Any]:
        i = 0
        sterile = 0
        while True:
            try:
                x = seq.item(i)
            except IndexError:
                return
            i += 1
            if pred(x):
                sterile = 0
                yield x
            else:
                sterile += 1
                if sterile > scan_limit:
                    raise NonProductiveError(
                        f"filter {name!r} scanned {scan_limit} elements "
                        "without producing"
                    )

    return LazySeq(gen(), name=name)


def pointwise(fn: Callable[..., Any], *seqs: Seq,
              name: str = "pointwise") -> Seq:
    """Apply ``fn`` position-by-position; output length = min length.

    This is the sequence lifting used for ``AND`` in §4.5: the i-th
    output exists only when every input has an i-th element (the strict
    reading, matching the paper's strict AND whose result is ⊥ when
    either argument is ⊥).
    """
    if all(isinstance(s, FiniteSeq) for s in seqs):
        n = min((len(s) for s in seqs), default=0)  # type: ignore[arg-type]
        return FiniteSeq(
            fn(*(s.item(i) for s in seqs)) for i in range(n)
        )

    def gen() -> Iterator[Any]:
        i = 0
        while True:
            try:
                args = [s.item(i) for s in seqs]
            except IndexError:
                return
            yield fn(*args)
            i += 1

    return LazySeq(gen(), name=name)


def take_while(pred: Callable[[Any], bool], seq: Seq,
               name: str = "take_while") -> Seq:
    """Longest prefix whose elements all satisfy ``pred``.

    This is §4.8's function ``g`` (with ``pred = (≠ F)``): the longest
    prefix containing no ``F``.  Monotone: if no failing element has
    been seen in a prefix, extending the input can only extend the
    output; once a failing element appears the output is frozen.
    """
    if isinstance(seq, FiniteSeq):
        out = []
        for x in seq:
            if not pred(x):
                break
            out.append(x)
        return FiniteSeq(out)

    def gen() -> Iterator[Any]:
        i = 0
        while True:
            try:
                x = seq.item(i)
            except IndexError:
                return
            if not pred(x):
                return
            yield x
            i += 1

    return LazySeq(gen(), name=name)


def subsequence_positions(seq: Seq, oracle: Seq, keep: Any,
                          name: str = "select") -> Seq:
    """Elements of ``seq`` at the positions where ``oracle`` equals ``keep``.

    This is the oracle-driven splitting of §4.6 (Fork): with a boolean
    oracle ``b``, ``g(c, b)`` keeps the elements of ``c`` where ``b`` is
    ``T`` and ``h(c, b)`` those where it is ``F``.  The i-th input is
    routed only when *both* the i-th input and the i-th oracle bit are
    available, which keeps the function monotone in both arguments.
    """
    paired = pointwise(lambda x, o: (x, o), seq, oracle, name=name)
    routed = seq_filter(lambda xo: xo[1] == keep, paired, name=name)
    return seq_map(lambda xo: xo[0], routed, name=name)


def is_subsequence(candidate: FiniteSeq, of: FiniteSeq) -> bool:
    """Order-preserving containment (the fair-merge fairness condition
    speaks of prefixes of an input being subsequences of output prefixes).
    """
    it = iter(of)
    return all(any(x == y for y in it) for x in candidate)


def interleavings(left: FiniteSeq, right: FiniteSeq
                  ) -> Iterator[FiniteSeq]:
    """All merge interleavings of two finite sequences.

    Used by tests/benches to enumerate the expected trace sets of the
    merge processes.  The count is C(|l|+|r|, |l|).
    """

    def go(i: int, j: int, acc: tuple) -> Iterator[tuple]:
        if i == len(left) and j == len(right):
            yield acc
            return
        if i < len(left):
            yield from go(i + 1, j, acc + (left.item(i),))
        if j < len(right):
            yield from go(i, j + 1, acc + (right.item(j),))

    for combo in go(0, 0, ()):
        yield FiniteSeq(combo)


def count_occurrences(seq: FiniteSeq, value: Any) -> int:
    """Number of occurrences of ``value`` in a finite sequence."""
    return sum(1 for x in seq if x == value)
