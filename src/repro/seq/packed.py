"""Flat-tuple faces of the sequence order (the compiled hot path).

The compiled solver keeps sequence-domain values as plain Python
tuples instead of :class:`~repro.seq.finite.FiniteSeq` objects: a
tuple *is* the finite sequence, with no wrapper allocation, no
``take`` copies and no method dispatch on the `f(v) ⊑ g(u)` check.

These functions are the order operations of :mod:`repro.seq.ordering`
restricted to that finite fragment.  The restriction collapses the
decidability machinery:

* every tuple is known finite, so ``seq_leq`` never raises and is a
  plain prefix test;
* ``seq_leq_upto(a, b, depth)`` on finite operands equals the prefix
  test of ``a`` truncated to ``depth``;
* ``seq_eq_upto(a, b, depth)`` on finite operands is exact equality
  regardless of depth (both lengths are known, so agreement "up to
  depth" plus equal length *is* equality).

``tests/properties/test_compiled_equivalence.py`` pins these faces
against the reference implementations bit-for-bit at every depth ≤ 8.
"""

from __future__ import annotations

from typing import Any, Tuple

PackedSeq = Tuple[Any, ...]


def packed_leq(a: PackedSeq, b: PackedSeq) -> bool:
    """Prefix order ``a ⊑ b`` on flat tuples.

    The finite face of :func:`repro.seq.ordering.seq_leq` — total
    (never raises) because every tuple is known finite.
    """
    return b[: len(a)] == a


def packed_leq_upto(a: PackedSeq, b: PackedSeq, depth: int) -> bool:
    """Bounded prefix order, the finite face of ``seq_leq_upto``.

    On finite operands the reference semantics — "``a.take(depth) ⊑
    b``, exact when ``a`` fits in the depth" — reduces to a prefix
    test of ``a`` truncated to ``depth``.
    """
    if len(a) > depth:
        a = a[:depth]
    return b[: len(a)] == a


def packed_eq_upto(a: PackedSeq, b: PackedSeq, depth: int) -> bool:
    """Bounded equality, the finite face of ``seq_eq_upto``.

    With both lengths known, ``seq_eq_upto`` demands prefix agreement
    *and* equal lengths — which on finite values is exact equality,
    independent of ``depth``.  The depth parameter is kept for
    signature parity with the reference and to let the property tests
    sweep it.
    """
    del depth
    return a == b


def pack_seq(seq: Any) -> PackedSeq:
    """The flat tuple carried by a finite :class:`Seq` (or tuple)."""
    if isinstance(seq, tuple):
        return seq
    n = seq.known_length()
    if n is None:
        raise ValueError(
            f"cannot pack a sequence of unknown length: {seq!r}"
        )
    return seq.take(n).items
