"""Lazy (possibly infinite) sequences.

The paper's interesting behaviours are infinite: ``0^ω`` (§2.1), the
sequences ``x, y, z`` of §2.3, ``(b,T)^ω`` (§4.2), the fair random
sequence (§4.7).  Python has no native lazy streams, so this module
provides a memoized generator-backed sequence: elements are produced on
demand and cached, making repeated prefix extraction cheap and
deterministic.

Design notes (this is the "clunky encoding" the reproduction notes warn
about, tamed):

* A :class:`LazySeq` never claims to be infinite — it only *fails to be
  known finite* until its generator is exhausted.  All consumers in the
  library therefore work with explicit prefix depths.
* Element production may itself be unproductive (e.g. filtering an
  infinite stream that stops matching).  Combinators that risk this take a
  ``scan_limit`` and raise :class:`NonProductiveError` instead of hanging.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

from repro.seq.finite import FiniteSeq, Seq


class NonProductiveError(RuntimeError):
    """A lazy computation consumed its scan budget without producing."""


class LazySeq(Seq):
    """A memoized, generator-backed, possibly infinite sequence."""

    __slots__ = ("_memo", "_source", "_exhausted", "name")

    def __init__(self, source: Iterator[Any], name: str = "lazy"):
        self._memo: list[Any] = []
        self._source: Optional[Iterator[Any]] = iter(source)
        self._exhausted = False
        self.name = name

    @classmethod
    def from_function(cls, nth: Callable[[int], Any],
                      name: str = "lazy") -> "LazySeq":
        """A sequence whose ``i``-th element is ``nth(i)`` (total ⇒ infinite)."""

        def gen() -> Iterator[Any]:
            i = 0
            while True:
                yield nth(i)
                i += 1

        return cls(gen(), name=name)

    # -- materialization ---------------------------------------------------

    def _force(self, n: int) -> None:
        """Materialize elements until ``len(memo) >= n`` or exhaustion."""
        while len(self._memo) < n and not self._exhausted:
            assert self._source is not None
            try:
                self._memo.append(next(self._source))
            except StopIteration:
                self._exhausted = True
                self._source = None

    # -- Seq interface ---------------------------------------------------

    def item(self, i: int) -> Any:
        if i < 0:
            raise IndexError("sequence indices are natural numbers")
        self._force(i + 1)
        if i < len(self._memo):
            return self._memo[i]
        raise IndexError(
            f"lazy sequence {self.name!r} is finite with length "
            f"{len(self._memo)}; no element {i}"
        )

    def take(self, n: int) -> FiniteSeq:
        if n < 0:
            raise ValueError("prefix length must be nonnegative")
        self._force(n)
        return FiniteSeq(self._memo[:n])

    def known_length(self) -> Optional[int]:
        if self._exhausted:
            return len(self._memo)
        return None

    def materialized_length(self) -> int:
        """How many elements have been produced so far (monotone)."""
        return len(self._memo)

    def to_finite(self, limit: int) -> FiniteSeq:
        """Materialize fully, refusing to exceed ``limit`` elements.

        Raises :class:`NonProductiveError` if more than ``limit`` elements
        exist (the sequence may be infinite).
        """
        self._force(limit + 1)
        if not self._exhausted:
            raise NonProductiveError(
                f"lazy sequence {self.name!r} exceeds {limit} elements"
            )
        return FiniteSeq(self._memo)

    def __repr__(self) -> str:
        shown = ", ".join(repr(x) for x in self._memo[:6])
        tail = "" if self._exhausted else ", …"
        return f"LazySeq({self.name!r}: [{shown}{tail}])"


def as_seq(value: Any) -> Seq:
    """Coerce tuples/lists/iterators to a :class:`Seq`; pass Seqs through."""
    if isinstance(value, Seq):
        return value
    if isinstance(value, (tuple, list)):
        return FiniteSeq(value)
    if hasattr(value, "__iter__"):
        return LazySeq(iter(value))
    raise TypeError(f"cannot interpret {value!r} as a sequence")
