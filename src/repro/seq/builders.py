"""Constructors for the sequences the paper works with.

Includes the infinite constants of the examples — ``0^ω`` (§2.1), the
tick stream ``T^ω`` (§4.2), ``trues``/``falses`` (§4.7) — and the three
solution sequences ``x``, ``y``, ``z`` of the Figure-3 network (§2.3),
built from the blocks ``B_i`` and ``C_i`` exactly as the paper defines
them.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, Iterator

from repro.seq.finite import EMPTY, FiniteSeq, Seq, fseq
from repro.seq.lazy import LazySeq


def empty() -> FiniteSeq:
    """The empty sequence ``ε``."""
    return EMPTY

def single(value: Any) -> FiniteSeq:
    """The one-element sequence ``v̄``."""
    return FiniteSeq((value,))


def from_iterable(items: Iterable[Any]) -> FiniteSeq:
    """A finite sequence from any finite iterable."""
    return FiniteSeq(items)


def repeat(value: Any, name: str | None = None) -> LazySeq:
    """The infinite constant sequence ``v^ω``."""
    return LazySeq(itertools.repeat(value),
                   name=name or f"{value!r}^ω")


def repeat_finite(value: Any, n: int) -> FiniteSeq:
    """The finite sequence ``v^n``."""
    return FiniteSeq((value,) * n)


def naturals(start: int = 0) -> LazySeq:
    """The infinite sequence ``start, start+1, …``."""
    return LazySeq(itertools.count(start), name=f"naturals({start})")


def iterate(step: Callable[[Any], Any], seed: Any,
            name: str = "iterate") -> LazySeq:
    """The infinite sequence ``seed, step(seed), step²(seed), …``."""

    def gen() -> Iterator[Any]:
        current = seed
        while True:
            yield current
            current = step(current)

    return LazySeq(gen(), name=name)


def cycle(items: Iterable[Any], name: str = "cycle") -> LazySeq:
    """The infinite periodic repetition of a finite block."""
    block = tuple(items)
    if not block:
        raise ValueError("cannot cycle an empty block")
    return LazySeq(itertools.cycle(block), name=name)


def concat(left: Seq, right: Seq, name: str = "concat") -> Seq:
    """Concatenation that tolerates a lazy/infinite left operand.

    If ``left`` is known finite the result is eager where possible;
    otherwise the result is lazy (and if ``left`` is infinite, ``right``
    is simply never reached — consistent with ``;`` on the sequence cpo).
    """
    llen = left.known_length()
    if llen is not None and isinstance(left, FiniteSeq) and \
            isinstance(right, FiniteSeq):
        return left.concat(right)

    def gen() -> Iterator[Any]:
        i = 0
        while True:
            try:
                yield left.item(i)
            except IndexError:
                break
            i += 1
        j = 0
        while True:
            try:
                yield right.item(j)
            except IndexError:
                return
            j += 1

    return LazySeq(gen(), name=name)


def prepend(value: Any, seq: Seq) -> Seq:
    """The paper's ``v; s``."""
    return concat(single(value), seq, name=f"{value!r};…")


def from_blocks(block: Callable[[int], FiniteSeq],
                name: str = "blocks") -> LazySeq:
    """Concatenation of ``block(0), block(1), …`` as a lazy sequence."""

    def gen() -> Iterator[Any]:
        for i in itertools.count():
            for item in block(i):
                yield item

    return LazySeq(gen(), name=name)


# ---------------------------------------------------------------------------
# The Section 2.3 solution sequences.
# ---------------------------------------------------------------------------

def block_b(i: int) -> FiniteSeq:
    """``B_i``: the integers ``0 … 2^i - 1`` in increasing order (§2.3)."""
    if i < 0:
        raise ValueError("block index must be nonnegative")
    return FiniteSeq(range(2 ** i))


def block_b_reversed(i: int) -> FiniteSeq:
    """``rev(B_i)``: the integers ``2^i - 1 … 0``."""
    return FiniteSeq(reversed(range(2 ** i)))


def block_c(i: int) -> FiniteSeq:
    """``C_i`` of §2.3: ``C_0 = ⟨-1⟩``, ``C_1 = ⟨0 -2⟩`` and ``C_{i+1}``
    replaces each element ``m`` of ``C_i`` by ``2m, 2m+1`` (for i ≥ 1)."""
    if i < 0:
        raise ValueError("block index must be nonnegative")
    if i == 0:
        return fseq(-1)
    current = fseq(0, -2)
    for _ in range(i - 1):
        doubled: list[int] = []
        for m in current:
            doubled.extend((2 * m, 2 * m + 1))
        current = FiniteSeq(doubled)
    return current


def misra_x() -> LazySeq:
    """The solution sequence ``x`` of §2.3: ``B_0 B_1 B_2 …``."""
    return from_blocks(block_b, name="x = B₀B₁B₂…")


def misra_y() -> LazySeq:
    """The solution sequence ``y`` of §2.3: ``rev(B_0) rev(B_1) …``."""
    return from_blocks(block_b_reversed, name="y = rev(B)…")


def misra_z() -> LazySeq:
    """The non-computation solution ``z`` of §2.3: ``C_0 C_1 C_2 …``."""
    return from_blocks(block_c, name="z = C₀C₁C₂…")
