"""repro — Equational reasoning about nondeterministic processes.

A complete Python implementation of Misra's theory (PODC 1989):
descriptions ``f ⟵ g`` of nondeterministic message-communicating
processes, smooth solutions generalizing least fixpoints, composition,
variable elimination, the §4 process catalog, and an operational Kahn
network simulator for cross-validation.

Quickstart::

    from repro.channels import Channel
    from repro.functions import chan, even_of, odd_of
    from repro.core import Description, combine
    from repro.traces import Trace

    b = Channel("b", alphabet={0, 2})
    c = Channel("c", alphabet={1, 3})
    d = Channel("d", alphabet={0, 1, 2, 3})
    dfm = combine([
        Description(even_of(chan(d)), chan(b)),
        Description(odd_of(chan(d)), chan(c)),
    ])
    t = Trace.from_pairs([(b, 0), (d, 0)])
    assert dfm.is_smooth_solution(t)

Subpackages: :mod:`repro.order`, :mod:`repro.seq`,
:mod:`repro.channels`, :mod:`repro.traces`, :mod:`repro.functions`,
:mod:`repro.core`, :mod:`repro.processes`, :mod:`repro.kahn`,
:mod:`repro.anomaly`.
"""

__version__ = "1.0.0"

from repro.channels import Channel, Event, ev
from repro.core import (
    Description,
    DescriptionSystem,
    SmoothSolutionSolver,
    combine,
    solve,
)
from repro.traces import Trace

__all__ = [
    "Channel",
    "Description",
    "DescriptionSystem",
    "Event",
    "SmoothSolutionSolver",
    "Trace",
    "__version__",
    "combine",
    "ev",
    "solve",
]
