#!/usr/bin/env python3
"""Fair merge via tagging (§4.10, Figure 7) and variable elimination.

The folklore result: every nondeterministic process is expressible with
deterministic processes plus fair merges.  The paper builds the general
fair merge itself from taggers (t0, t1), a discriminated merge on tags,
and an untagger — then *eliminates* the internal channels c', d' by §7,
leaving three descriptions.  This script performs the elimination with
the library, verifies the side conditions, and explores the resulting
process.

Run:  python examples/fair_merge_pipeline.py
"""

from repro.core import check_conditions, eliminate_channels
from repro.processes import merge
from repro.seq import fseq, interleavings
from repro.traces import Trace


def get(process, name):
    return next(c for c in process.channels if c.name == name)


def main() -> None:
    print("== the Figure-7 system, before elimination ==")
    full = merge.make_fair_merge(full_network=True)
    for desc in full.system:
        print(f"  {desc.name}")

    c1 = next(ch for ch in full.channels if ch.name == "c'")
    d1 = next(ch for ch in full.channels if ch.name == "d'")

    print("\n== §7 side conditions for eliminating c' and d' ==")
    for channel in (c1, d1):
        report = check_conditions(full.system, channel)
        print(f"  {channel.name}: h independent: "
              f"{report.h_independent}, retained lhs independent: "
              f"{report.retained_lhs_independent}, f(⊥)=⊥: "
              f"{report.f_bottom_is_bottom}  → sound: {report.sound}")

    reduced_system = eliminate_channels(full.system, [c1, d1])
    print("\nafter elimination:")
    for desc in reduced_system:
        print(f"  {desc.name}")

    print("\n== trace set = all fair interleavings ==")
    process = merge.make_fair_merge(alphabet={1, 2, 7})
    c, d, e = (get(process, n) for n in "cde")
    left, right = fseq(1, 2), fseq(7)
    print(f"  inputs: c = {list(left)}, d = {list(right)}")
    for merged in interleavings(left, right):
        t = Trace.from_pairs(
            [(c, m) for m in left] + [(d, m) for m in right]
            + [(e, m) for m in merged]
        )
        print(f"  e = {list(merged)}: trace? "
              f"{process.is_trace(t, depth=24)}")

    print("\n== unfairness is rejected ==")
    starved = Trace.from_pairs(
        [(c, m) for m in left] + [(d, 7)] + [(e, 1), (e, 2)]
    )
    print(f"  dropping input 7: trace? "
          f"{process.is_trace(starved)}   (must be False)")

    print("\n== operational fair merge agrees ==")
    from repro.kahn import quiescent_traces
    from repro.kahn.agents import source_agent, tagging_merge_agent

    observed = quiescent_traces(
        lambda: {
            "src-c": source_agent(c, list(left)),
            "src-d": source_agent(d, list(right)),
            "merge": tagging_merge_agent(c, d, e),
        },
        [c, d, e], seeds=range(40), max_steps=60,
    )
    outputs = sorted({tuple(t.messages_on(e)) for t in observed})
    print(f"  operational outputs: {outputs}")
    expected = sorted(tuple(s) for s in interleavings(left, right))
    print(f"  = all interleavings: {outputs == expected}")


if __name__ == "__main__":
    main()
