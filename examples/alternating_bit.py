#!/usr/bin/env python3
"""Alternating-bit protocol over lossy channels, verified against its
service specification.

The intro's motivating domain — message-communicating processes — in
one worked scenario that goes *beyond* the paper's catalog using its
machinery:

* two lossy channels (the paper's Fork pattern, see
  ``repro.processes.lossy``) connect a sender and a receiver;
* the sender tags messages with an alternating bit and retransmits
  until acknowledged; the receiver de-duplicates by bit and acks;
* the *service specification* is the humble Kahn description
  ``out ⟵ ⟨m₁ … mₖ⟩`` — delivered exactly the submitted sequence;
* every quiescent computation of the protocol (sampled over many
  schedules, with fair-lossy channels) satisfies the specification,
  and prefix safety (deliveries form a prefix of the submission order,
  no duplicates) holds at every step.

Part two swaps the explicit lossy-channel *agents* for the fault
injection layer (``repro.faults``): the same protocol rides directly on
two channels perturbed by seeded ``DropFault``/``DuplicateFault``
models, a conformance grid checks every quiescent trace against the
service spec, and an *unfair* black-hole channel shows the supervised
runtime's watchdog catching the resulting retransmission livelock.

Run:  python examples/alternating_bit.py
"""

from repro.channels import Channel
from repro.core import Description, DescriptionSystem
from repro.faults import (
    DropFault,
    DuplicateFault,
    FaultPlan,
    no_faults,
    run_conformance,
    run_supervised,
)
from repro.functions import chan
from repro.functions.base import const_seq
from repro.kahn import RandomOracle, run_network
from repro.kahn.effects import Poll, Recv, Send
from repro.processes.lossy import lossy_agent
from repro.reasoning import SafetyProperty, check_progress, eventually_count
from repro.seq import FiniteSeq
from repro.traces import Trace

MESSAGES = ["alpha", "beta", "gamma"]
ALPHABET = frozenset(MESSAGES)
TAGGED = frozenset((bit, m) for bit in (0, 1) for m in MESSAGES)
ACKS = frozenset({0, 1})

OUT = Channel("out", alphabet=ALPHABET)
S2C = Channel("s2c", alphabet=TAGGED)      # sender → data channel
C2R = Channel("c2r", alphabet=TAGGED)      # data channel → receiver
R2C = Channel("r2c", alphabet=ACKS)        # receiver → ack channel
C2S = Channel("c2s", alphabet=ACKS)        # ack channel → sender


def sender(messages, retransmit_limit=25):
    """Stop-and-wait: send (bit, m), poll for the matching ack,
    retransmit while it has not arrived."""
    bit = 0
    for m in messages:
        yield Send(S2C, (bit, m))
        attempts = 0
        while True:
            has_ack = yield Poll(C2S)
            if has_ack:
                ack = yield Recv(C2S)
                if ack == bit:
                    break  # delivered; next message
                continue   # stale ack for the previous bit
            attempts += 1
            if attempts > retransmit_limit:
                return  # give up (never reached with fair channels)
            yield Send(S2C, (bit, m))
        bit ^= 1


def receiver():
    """Deliver fresh bits, ack everything, drop duplicates."""
    expected = 0
    while True:
        bit, message = yield Recv(C2R)
        yield Send(R2C, bit)
        if bit == expected:
            yield Send(OUT, message)
            expected ^= 1


def protocol_network(messages, drop_bound=2):
    return {
        "sender": sender(messages),
        "data-channel": lossy_agent(S2C, C2R,
                                    max_consecutive_drops=drop_bound),
        "ack-channel": lossy_agent(R2C, C2S,
                                   max_consecutive_drops=drop_bound),
        "receiver": receiver(),
    }


CHANNELS = [OUT, S2C, C2R, R2C, C2S]


def service_spec(messages) -> DescriptionSystem:
    """The end-to-end Kahn specification: out ⟵ ⟨m₁ … mₖ⟩."""
    return DescriptionSystem(
        [Description(chan(OUT), const_seq(FiniteSeq(messages)),
                     name="out ⟵ submitted")],
        channels=[OUT], name="service",
    )


def delivery_safety(messages) -> SafetyProperty:
    """At every point, deliveries are a prefix of the submission."""
    submitted = FiniteSeq(messages)
    return SafetyProperty(
        "deliveries prefix submission",
        lambda t: t.messages_on(OUT).is_prefix_of(submitted),
    )


# -- part two: the same protocol over fault-injected channels ----------------
#
# Instead of modelling loss as explicit channel agents, the sender and
# receiver talk over DATA/ACK directly and a FaultPlan perturbs the
# wires.  The channel's recorded stream is the post-fault delivery
# stream (the §4.6 Fork reading), so the service spec needs no change.

DATA = Channel("data", alphabet=TAGGED)
ACK = Channel("ack", alphabet=ACKS)
FAULTY_CHANNELS = [OUT, DATA, ACK]


def direct_sender(messages, retransmit_limit=50):
    """Stop-and-wait over the faulted wire.  ``retransmit_limit=None``
    never gives up — reliable against fair loss, a livelock against an
    unfair black hole."""
    bit = 0
    for m in messages:
        yield Send(DATA, (bit, m))
        attempts = 0
        while True:
            has_ack = yield Poll(ACK)
            if has_ack:
                ack = yield Recv(ACK)
                if ack == bit:
                    break
                continue
            attempts += 1
            if retransmit_limit is not None and attempts > retransmit_limit:
                return
            yield Send(DATA, (bit, m))
        bit ^= 1


def direct_receiver():
    expected = 0
    while True:
        bit, message = yield Recv(DATA)
        yield Send(ACK, bit)
        if bit == expected:
            yield Send(OUT, message)
            expected ^= 1


def direct_agents(messages, retransmit_limit=50):
    """Agent factories (restartable) for the fault-injected protocol."""
    return {
        "sender": lambda: direct_sender(messages, retransmit_limit),
        "receiver": direct_receiver,
    }


def fair_loss_plan(seed, p=0.35, bound=2):
    """Fair-lossy wires: at most ``bound`` consecutive drops."""
    return FaultPlan({
        DATA: DropFault(seed=seed, p=p, max_consecutive_drops=bound),
        ACK: DropFault(seed=seed + 1, p=p, max_consecutive_drops=bound),
    }, name=f"fair-loss(p={p})")


def loss_and_duplication_plan(seed):
    """Drops and duplicates on the data wire, drops on the ack wire."""
    return FaultPlan({
        DATA: [DropFault(seed=seed, p=0.3, max_consecutive_drops=2),
               DuplicateFault(seed=seed + 7, p=0.3)],
        ACK: DropFault(seed=seed + 1, p=0.3, max_consecutive_drops=2),
    }, name="loss+dup")


def unfair_loss_plan():
    """A black hole on the data wire: unbounded, certain loss."""
    return FaultPlan(
        {DATA: DropFault(seed=0, p=1.0, max_consecutive_drops=None)},
        name="black-hole",
    )


def main() -> None:
    spec = service_spec(MESSAGES)
    safety = delivery_safety(MESSAGES)

    print(f"submitting {MESSAGES} across two lossy channels "
          "(≤2 consecutive drops)")
    print()

    delivered_ok = 0
    runs = 40
    retransmissions = []
    for seed in range(runs):
        result = run_network(
            protocol_network(MESSAGES), CHANNELS,
            RandomOracle(seed), max_steps=3000,
        )
        visible = result.trace.project({OUT})
        # safety holds at every prefix of the full trace
        for n in range(result.trace.length() + 1):
            assert safety(result.trace.take(n)), (seed, n)
        if result.quiescent and spec.is_smooth_solution(visible):
            delivered_ok += 1
        retransmissions.append(
            result.trace.count_on(S2C) - len(MESSAGES)
        )

    print(f"runs with exact in-order delivery: "
          f"{delivered_ok}/{runs}")
    print(f"retransmissions per run: min "
          f"{min(retransmissions)}, max {max(retransmissions)}")

    print("\nprogress on one run:")
    result = run_network(protocol_network(MESSAGES), CHANNELS,
                         RandomOracle(7), max_steps=3000)
    report = check_progress(
        result.trace, eventually_count(OUT, len(MESSAGES)),
        horizon=result.trace.length(),
    )
    print(f"  {report}")

    print("\nthe specification is just a Kahn description:")
    for desc in spec:
        print(f"  {desc.name}")
    assert delivered_ok == runs
    print("\nprotocol verified against its service specification.")

    # -- part two: fault injection & supervision -------------------------
    print("\n--- fault injection layer ---")
    grid = {
        "no-faults": no_faults,
        "fair-loss": lambda: fair_loss_plan(seed=11),
        "heavy-loss": lambda: fair_loss_plan(seed=23, p=0.5),
        "loss+dup": lambda: loss_and_duplication_plan(seed=5),
    }
    report = run_conformance(
        "abp-direct", direct_agents(MESSAGES), FAULTY_CHANNELS,
        spec.combined(), grid, seeds=range(10),
        observe={OUT}, max_steps=4000, watchdog_limit=600,
    )
    print(report.summary())
    assert report.all_conform, report.violations
    print("every quiescent trace under every fair fault plan is a "
          "smooth solution of the service spec.")

    print("\nunfair loss (black-hole data wire, sender never gives up):")
    result = run_supervised(
        direct_agents(MESSAGES, retransmit_limit=None),
        FAULTY_CHANNELS, RandomOracle(3),
        max_steps=100_000, fault_plan=unfair_loss_plan(),
        watchdog_limit=400,
    )
    assert result.watchdog_fired and result.steps < 100_000
    print(f"  watchdog terminated the livelock after {result.steps} "
          f"steps (budget was 100000):")
    for line in result.diagnosis.splitlines():
        print(f"  | {line}")
    print("\nfault-injected protocol verified; unfair loss diagnosed.")


if __name__ == "__main__":
    main()
