#!/usr/bin/env python3
"""Deterministic networks: Kahn's least fixpoint as the unique smooth
solution (§2.1 and Theorem 4).

The Figure-1 two-copy loop ``c ⟵ b, b ⟵ c`` has least fixpoint ε — the
network does nothing.  Prepending a 0 (``b ⟵ 0;c``) makes the least
fixpoint ``0^ω`` — the network loops forever.  Theorem 4 says these
least fixpoints are exactly the smooth solutions, which we check three
ways: Kleene iteration, the smooth-solution definition, and an
operational run.

Run:  python examples/kahn_fixpoint.py
"""

from repro.channels import Channel
from repro.core import kahn_least_fixpoint
from repro.core.chains import (
    id_description,
    kleene_witness_chain,
    theorem4_unique_smooth_solution,
)
from repro.core.description import DescriptionSystem
from repro.kahn import RandomOracle, run_network
from repro.kahn.agents import copy_agent, prepend0_agent
from repro.processes.deterministic import (
    copy_description,
    prepend0_description,
)
from repro.seq import SEQ_CPO, FiniteSeq
from repro.traces import Trace

B = Channel("b", alphabet={0})
C = Channel("c", alphabet={0})


def main() -> None:
    print("== Figure 1: c ⟵ b , b ⟵ c ==")
    loop = DescriptionSystem(
        [copy_description(B, C), copy_description(C, B)],
        channels=[B, C],
    )
    semantics = kahn_least_fixpoint(loop)
    print(f"  Kleene iteration converged: {semantics.converged} "
          f"after {semantics.fixpoint.iterations} steps")
    print(f"  least fixpoint: b = {semantics.environment()[B]!r}, "
          f"c = {semantics.environment()[C]!r}")
    print(f"  ε is a smooth solution: "
          f"{loop.is_smooth_solution(Trace.empty())}")
    print(f"  ⟨(b,0)(c,0)⟩ is not:    "
          f"{not loop.is_smooth_solution(Trace.from_pairs([(B, 0), (C, 0)]))}")

    result = run_network(
        {"p1": copy_agent(B, C), "p2": copy_agent(C, B)},
        [B, C], RandomOracle(0), max_steps=50,
    )
    print(f"  operational: quiescent={result.quiescent}, "
          f"events sent={result.trace.length()}")

    print("\n== Figure 1 modified: c ⟵ b , b ⟵ 0;c ==")
    modified = DescriptionSystem(
        [copy_description(B, C), prepend0_description(C, B)],
        channels=[B, C],
    )
    semantics = kahn_least_fixpoint(modified, max_iterations=16)
    lazy = semantics.lazy_environment()
    print(f"  Kleene iteration converged: {semantics.converged} "
          "(the behaviour is infinite)")
    print(f"  lazy least fixpoint: b = {list(lazy[B].take(6))}… "
          f"(= 0^ω)")
    omega = Trace.cycle_pairs([(B, 0), (C, 0)])
    print(f"  ⟨(b,0)(c,0)⟩^ω is a smooth solution: "
          f"{modified.is_smooth_solution(omega, depth=24)}")

    result = run_network(
        {"p1": copy_agent(B, C), "p2": prepend0_agent(C, B)},
        [B, C], RandomOracle(0), max_steps=200,
    )
    print(f"  operational: still running after {result.steps} steps, "
          f"{result.trace.length()} zeros sent")

    print("\n== Theorem 4 over an abstract cpo ==")
    # h appends 1s, saturating at length 3
    def h(s: FiniteSeq) -> FiniteSeq:
        return s if len(s) >= 3 else s.append(1)

    lfp = theorem4_unique_smooth_solution(h, SEQ_CPO)
    desc = id_description(h, SEQ_CPO)
    chain = kleene_witness_chain(h, SEQ_CPO)
    print(f"  least fixpoint of h: {lfp!r}")
    print(f"  witnessed as a smooth solution of id ⟵ h: "
          f"{desc.is_smooth_via(lfp, chain, upto=6)}")


if __name__ == "__main__":
    main()
