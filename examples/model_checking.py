#!/usr/bin/env python3
"""Model checking with descriptions: safety, progress, and exhaustive
schedule exploration.

The paper sells equational descriptions as a *reasoning* tool (§2.3
proves progress and safety of the doubling network from its equations).
This script shows the executable version on the dfm merge:

1. a safety property checked on every reachable history (§3.3 tree);
2. a progress property checked on a solution;
3. the central claim as a set equality: every schedule of the machine
   enumerated, every smooth solution of the description enumerated,
   and the two sets compared elementwise.

Run:  python examples/model_checking.py
"""

from repro.channels import Channel
from repro.core import Description, combine, solve
from repro.kahn import exhaustive_quiescent_traces
from repro.kahn.agents import dfm_agent, source_agent
from repro.functions import chan, even_of, odd_of
from repro.reasoning import (
    check_progress,
    check_safety_on_description,
    counting_bound,
    eventually_all,
    never_message,
    outputs_justified_by_inputs,
)
from repro.seq import fseq
from repro.traces import Trace

B = Channel("b", alphabet={0, 2})
C = Channel("c", alphabet={1, 3})
D = Channel("d", alphabet={0, 1, 2, 3})


def main() -> None:
    dfm = combine([
        Description(even_of(chan(D)), chan(B)),
        Description(odd_of(chan(D)), chan(C)),
    ], name="dfm")

    print("== safety on every reachable history ==")
    for prop in [
        outputs_justified_by_inputs([B, C], [D]),
        counting_bound("outputs ≤ inputs", D,
                       lambda t: t.count_on(B) + t.count_on(C)),
    ]:
        report = check_safety_on_description(dfm, [B, C, D], prop,
                                             max_depth=4)
        print(f"  {report}")

    print("\n== a property that fails, with its counterexample ==")
    report = check_safety_on_description(
        dfm, [B, C, D], never_message(D, 3), max_depth=3,
    )
    print(f"  {report}")

    print("\n== progress on a solution ==")
    solution = Trace.from_pairs(
        [(B, 0), (C, 1), (D, 1), (B, 2), (D, 0), (D, 2)]
    )
    assert dfm.is_smooth_solution(solution)
    goal = eventually_all("all inputs forwarded", D, [0, 1, 2])
    print(f"  {check_progress(solution, goal, horizon=10)}")

    print("\n== the central claim, as a set equality ==")
    computations = exhaustive_quiescent_traces(
        lambda: {
            "env-b": source_agent(B, [0, 2]),
            "env-c": source_agent(C, [1]),
            "dfm": dfm_agent(B, C, D),
        },
        [B, C, D], max_steps=60,
    )
    solutions = {
        t for t in solve(dfm, [B, C, D], max_depth=6).finite_solutions
        if t.messages_on(B) == fseq(0, 2)
        and t.messages_on(C) == fseq(1)
    }
    print(f"  computations (every schedule): {len(computations)}")
    print(f"  smooth solutions (solver):     {len(solutions)}")
    print(f"  sets equal elementwise:        "
          f"{computations == solutions}")
    assert computations == solutions


if __name__ == "__main__":
    main()
