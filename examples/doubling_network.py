#!/usr/bin/env python3
"""The Figure-3 doubling network (§2.3): many solutions, one smoothness
filter.

Processes P (``b ⟵ 0; 2×d``), Q (``c ⟵ 2×d+1``) and the discriminated
fair merge give, after eliminating ``b`` and ``c``:

    even(d) ⟵ 0; 2×d        odd(d) ⟵ 2×d + 1

The paper exhibits three infinite solutions: ``x`` (blocks B_i in
order), ``y`` (reversed blocks) and ``z`` (blocks C_i, containing −1).
``x`` and ``y`` are smooth — they correspond to two different merge
disciplines — while ``z`` is a pure equation artifact.

Run:  python examples/doubling_network.py
"""

from repro.channels import Channel, Event
from repro.core import Description, combine, eliminate_channels
from repro.core.description import DescriptionSystem
from repro.functions import (
    affine_of,
    chan,
    even_of,
    odd_of,
    prepend_of,
    scale_of,
)
from repro.seq import Seq, misra_x, misra_y, misra_z
from repro.traces import Trace

D = Channel("d")
DEPTH = 48


def description():
    return combine([
        Description(even_of(chan(D)),
                    prepend_of(0, scale_of(2, chan(D))),
                    name="even(d) ⟵ 0;2×d"),
        Description(odd_of(chan(D)), affine_of(2, 1, chan(D)),
                    name="odd(d) ⟵ 2×d+1"),
    ], name="fig3")


def d_trace(seq: Seq, name: str) -> Trace:
    def gen():
        i = 0
        while True:
            try:
                yield Event(D, seq.item(i))
            except IndexError:
                return
            i += 1

    return Trace.lazy(gen(), name=name)


def main() -> None:
    print("== deriving the network description by elimination (§7) ==")
    b = Channel("b")
    c = Channel("c")
    full = DescriptionSystem(
        [
            Description(chan(b), prepend_of(0, scale_of(2, chan(D))),
                        name="b ⟵ 0;2×d   {P}"),
            Description(chan(c), affine_of(2, 1, chan(D)),
                        name="c ⟵ 2×d+1   {Q}"),
            Description(even_of(chan(D)), chan(b),
                        name="even(d) ⟵ b  {dfm}"),
            Description(odd_of(chan(D)), chan(c),
                        name="odd(d) ⟵ c   {dfm}"),
        ],
        channels=[b, c, D],
    )
    for desc in full:
        print(f"  {desc.name}")
    derived = eliminate_channels(full, [b, c])
    print("after eliminating b, c:")
    for desc in derived:
        print(f"  {desc.name}")

    print("\n== the three solution sequences (§2.3) ==")
    desc = description()
    for name, seq in [("x", misra_x()), ("y", misra_y()),
                      ("z", misra_z())]:
        t = d_trace(seq, name)
        verdict = desc.check(t, depth=DEPTH)
        head = list(seq.take(8))
        print(f"  {name} = {head}…")
        print(f"     solves equations: {verdict.is_solution}   "
              f"smooth: {verdict.is_smooth}")
        if verdict.first_violation is not None:
            v = verdict.first_violation
            print(f"     first violation at |u|={v.u.length()}: "
                  f"the element {v.v.item(v.v.length()-1).message} "
                  "would have to cause itself")

    print("\n== progress & safety (provable from the equations) ==")
    x = list(misra_x().take(260))
    print(f"  every n < 32 appears in x: "
          f"{set(range(32)) <= set(x)}")
    ok = all(
        m // 2 in x[:i]
        for i, m in enumerate(x) if m > 0 and m % 2 == 0
    )
    print(f"  2n always preceded by n:   {ok}")


if __name__ == "__main__":
    main()
