#!/usr/bin/env python3
"""Quickstart: describe a nondeterministic process and check traces.

The discriminated fair merge ``dfm`` of §2.2 receives even integers on
``b``, odd integers on ``c``, and merges them fairly onto ``d``.  Its
description is the pair of "equations"

    even(d) ⟵ b        odd(d) ⟵ c

and its quiescent traces are exactly the smooth solutions.  This script
builds the description, checks the paper's example traces, enumerates
all small traces with the §3.3 solver, and cross-validates against an
operational simulation.

Run:  python examples/quickstart.py
"""

from repro.channels import Channel
from repro.core import Description, SmoothSolutionSolver, combine
from repro.functions import chan, even_of, odd_of
from repro.traces import Trace


def main() -> None:
    b = Channel("b", alphabet={0, 2})
    c = Channel("c", alphabet={1, 3})
    d = Channel("d", alphabet={0, 1, 2, 3})

    dfm = combine([
        Description(even_of(chan(d)), chan(b),
                    name="even(d) ⟵ b"),
        Description(odd_of(chan(d)), chan(c),
                    name="odd(d) ⟵ c"),
    ], name="dfm")

    print("== the paper's example communication histories (§3.1.1) ==")
    examples = [
        ("ε", Trace.empty()),
        ("(b,0)(d,0)", Trace.from_pairs([(b, 0), (d, 0)])),
        ("(b,0)", Trace.from_pairs([(b, 0)])),
        ("(b,0)(d,0)(c,1)",
         Trace.from_pairs([(b, 0), (d, 0), (c, 1)])),
        ("(d,0)  [spontaneous output]",
         Trace.from_pairs([(d, 0)])),
    ]
    for label, t in examples:
        verdict = dfm.check(t)
        status = "quiescent trace" if verdict.is_smooth else (
            "non-quiescent history" if not verdict.violations
            else "IMPOSSIBLE (violates smoothness)"
        )
        print(f"  {label:28s} -> {status}")

    print("\n== enumerating all smooth solutions to depth 4 (§3.3) ==")
    solver = SmoothSolutionSolver.over_channels(dfm, [b, c, d])
    result = solver.explore(4)
    print(f"  nodes explored:    {result.nodes_explored}")
    print(f"  quiescent traces:  {len(result.finite_solutions)}")
    for t in sorted(result.finite_solutions,
                    key=lambda s: (s.length(), repr(s)))[:8]:
        print(f"    {t!r}")
    print("    …")

    print("\n== operational cross-check (computations ⇔ solutions) ==")
    from repro.kahn import check_operational_soundness
    from repro.kahn.agents import dfm_agent, source_agent

    report = check_operational_soundness(
        make_agents=lambda: {
            "env-even": source_agent(b, [0, 2]),
            "env-odd": source_agent(c, [1]),
            "dfm": dfm_agent(b, c, d),
        },
        channels=[b, c, d],
        description=dfm,
        seeds=range(20),
        max_steps=100,
    )
    print(f"  quiescent runs checked: {report.quiescent_checked}")
    print(f"  all smooth solutions:   {report.all_agree}")


if __name__ == "__main__":
    main()
