#!/usr/bin/env python3
"""The Brock–Ackermann anomaly (§2.4), resolved by smoothness.

The Figure-4 feedback network satisfies the equations

    even(c) ⟵ ⟨0 2⟩ ,   odd(c) ⟵ f(c)

which have exactly two solutions over integer sequences: ⟨0 1 2⟩ and
⟨0 2 1⟩.  Only ⟨0 2 1⟩ arises from a computation — history-insensitive
semantics cannot tell them apart (the anomaly); the smoothness
condition rejects ⟨0 1 2⟩ for precisely the operational reason: process
B cannot emit 1 before receiving two items.

Run:  python examples/brock_ackermann.py
"""

from repro.anomaly import (
    SOLUTION_ANOMALOUS,
    SOLUTION_REAL,
    analyse,
    channels,
    combined_description,
    trace_of_output,
)


def main() -> None:
    analysis = analyse(n_seeds=60)

    print("== equation solutions over sequences (§2.4) ==")
    for s in analysis.equation_solutions:
        tag = ("anomalous" if tuple(s) == tuple(SOLUTION_ANOMALOUS)
               else "real computation")
        print(f"  c = {list(s)}   [{tag}]")

    print("\n== smoothness verdicts ==")
    b, c = channels()
    desc = combined_description(b, c)
    for s in analysis.equation_solutions:
        verdict = desc.check(trace_of_output(c, s))
        print(f"  c = {list(s)}: solution={verdict.is_solution}  "
              f"smooth={verdict.is_smooth}")
        if verdict.first_violation is not None:
            v = verdict.first_violation
            print(f"     rejected because f({v.v!r}) = {v.lhs_of_v!r}"
                  f" ⋢ g({v.u!r}) = {v.rhs_of_u!r}")

    print("\n== operational evidence (sampled schedules) ==")
    print(f"  outputs observed: "
          f"{sorted(list(s) for s in analysis.operational_outputs)}")
    print(f"  smooth solutions coincide with computations: "
          f"{analysis.resolved}")

    assert analysis.anomalous_rejected
    assert analysis.resolved
    print("\nAnomaly resolved: smooth solutions = computations.")


if __name__ == "__main__":
    main()
