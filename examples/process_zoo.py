#!/usr/bin/env python3
"""The §4 process zoo: every catalog process, its description, and a
taste of its trace set.

Walks the whole catalog — CHAOS, Ticks, Random Bit, Random Bit
Sequence, Implication, Fork, Fair Random Sequence, Finite Ticks,
Random Number, dfm, Fair Merge — printing each process's descriptions
and a few membership verdicts, denotational and operational.

Run:  python examples/process_zoo.py
"""

from repro.kahn import RandomOracle, run_network
from repro.processes import (
    chaos,
    fair_random,
    finite_ticks,
    fork,
    implication,
    merge,
    random_bit,
    random_number,
    ticks,
)
from repro.processes.ticks import the_trace
from repro.traces import Trace


def show(process, notes):
    print(f"\n== {process.name} ==")
    for desc in process.system:
        print(f"  {desc.name}")
    aux = sorted(c.name for c in process.auxiliary_channels)
    if aux:
        print(f"  auxiliary channels: {', '.join(aux)}")
    for note in notes:
        print(f"  {note}")


def get(process, name):
    return next(c for c in process.channels if c.name == name)


def main() -> None:
    print("The §4 catalog — descriptions and trace-set samples")

    p = chaos.make()
    show(p, [f"traces to depth 3: {len(p.traces_upto(3))} "
             "(everything)"])

    p = ticks.make()
    b = next(iter(p.channels))
    show(p, [
        f"finite traces: {len(p.traces_upto(4))}",
        f"(b,T)^ω smooth: "
        f"{p.description().is_smooth_solution(the_trace(b), depth=24)}",
    ])

    p = random_bit.make()
    show(p, [f"traces: {sorted(repr(t) for t in p.traces_upto(2))}"])

    p = random_bit.make_sequence()
    bq, cq = get(p, "b"), get(p, "c")
    t = Trace.from_pairs([(cq, "T"), (bq, "F")])
    show(p, [f"(c,T)(b,F) a trace: {p.is_trace(t)}"])

    p = implication.make()
    c, d = get(p, "c"), get(p, "d")
    show(p, [
        f"traces: {sorted(repr(t) for t in p.traces_upto(3))}",
        "the F-in/T-out combination is impossible: "
        f"{not p.is_trace(Trace.from_pairs([(c, 'F'), (d, 'T')]))}",
    ])

    p = fork.make()
    c, d, e = get(p, "c"), get(p, "d"), get(p, "e")
    routed = Trace.from_pairs([(c, 0), (c, 1), (e, 0), (d, 1)])
    show(p, [f"cross-routing ⟨0→e, 1→d⟩ a trace: "
             f"{p.is_trace(routed, depth=24)}"])

    p = fair_random.make()
    c = get(p, "c")
    from repro.processes.fair_random import bit_trace

    show(p, [
        "fair bit stream smooth: "
        f"{p.description().is_smooth_solution(bit_trace(c, ('F',)), depth=24)}",
        "all-T stream smooth: "
        f"{p.description().is_smooth_solution(Trace.cycle_pairs([(c, 'T')]), depth=24)}",
    ])

    p = finite_ticks.make()
    d = get(p, "d")
    show(p, [
        f"(d,T)^3 a trace: "
        f"{p.is_trace(Trace.from_pairs([(d, 'T')] * 3), depth=32)}",
        f"(d,T)^ω a trace: "
        f"{p.is_trace(Trace.cycle_pairs([(d, 'T')]))}",
    ])

    p = random_number.make()
    d = get(p, "d")
    show(p, [
        f"(d,7) a trace: "
        f"{p.is_trace(Trace.from_pairs([(d, 7)]), depth=48)}",
        f"ε a trace: {p.is_trace(Trace.empty())}",
    ])

    p = merge.make_dfm()
    b, c, d = get(p, "b"), get(p, "c"), get(p, "d")
    show(p, [
        "⟨(b,0)(c,1)(d,1)(d,0)⟩ a trace: "
        f"{p.is_trace(Trace.from_pairs([(b, 0), (c, 1), (d, 1), (d, 0)]))}",
    ])

    p = merge.make_fair_merge()
    c, d, e = get(p, "c"), get(p, "d"), get(p, "e")
    show(p, [
        "merge of ⟨0⟩ and ⟨1⟩ as ⟨1 0⟩ a trace: "
        f"{p.is_trace(Trace.from_pairs([(c, 0), (d, 1), (e, 1), (e, 0)]), depth=24)}",
    ])

    print("\n== one operational run per nondeterministic machine ==")
    from repro.kahn.agents import (
        finite_ticks_agent,
        random_number_agent,
    )

    ft_channel = get(finite_ticks.make(), "d")
    result = run_network({"ft": finite_ticks_agent(ft_channel)},
                         [ft_channel], RandomOracle(11),
                         max_steps=100)
    print(f"  finite ticks emitted: {result.trace.length()}")

    from repro.channels import Channel

    rn_channel = Channel("d")
    result = run_network({"rn": random_number_agent(rn_channel)},
                         [rn_channel], RandomOracle(7), max_steps=200)
    print(f"  random number drawn:  "
          f"{result.trace.item(0).message}")


if __name__ == "__main__":
    main()
