"""Property evidence: exploration order never changes the answer.

Randomized over depth, node budget, strategy, heuristic, engine and
dedup, on both registered scenarios:

* wherever BFS completes, best-first and iterative-deepening produce
  the identical solution-set digest (the tentpole's correctness bar);
* truncate → checkpoint → resume is digest-equal to the straight run
  for every strategy, not just the BFS loop PR 5 pinned;
* queries agree with enumerate-then-filter under every configuration.
"""

import pathlib
import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.checkpoint import SolverCheckpoint
from repro.channels.channel import Channel
from repro.core.description import Description, combine
from repro.core.search import parse_predicate
from repro.core.solver import SmoothSolutionSolver
from repro.functions.base import chan
from repro.functions.seq_fns import even_of, odd_of

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent.parent
           / "examples")
)

B = Channel("b", alphabet={0, 2})
C = Channel("c", alphabet={1, 3})
D = Channel("d", alphabet={0, 1, 2, 3})


def dfm_solver(**kwargs) -> SmoothSolutionSolver:
    desc = combine([
        Description(even_of(chan(D)), chan(B)),
        Description(odd_of(chan(D)), chan(C)),
    ], name="dfm")
    return SmoothSolutionSolver.over_channels(desc, [B, C, D],
                                              **kwargs)


def abp_solver(**kwargs) -> SmoothSolutionSolver:
    from alternating_bit import MESSAGES, OUT, service_spec

    spec = service_spec(MESSAGES).combined()
    return SmoothSolutionSolver.over_channels(spec, [OUT], **kwargs)


SCENARIOS = {"dfm": dfm_solver, "alternating_bit": abp_solver}

configs = st.fixed_dictionaries({
    "strategy": st.sampled_from(
        ("bfs", "best-first", "iterative-deepening")),
    "heuristic": st.sampled_from(
        ("depth", "rhs-distance", "channel-balance")),
    "compiled": st.sampled_from((False, None)),
    "dedup": st.booleans(),
})


class TestSolutionSetDigests:
    @settings(max_examples=25, deadline=None)
    @given(scenario=st.sampled_from(sorted(SCENARIOS)),
           depth=st.integers(0, 5), config=configs)
    def test_every_strategy_matches_bfs(self, scenario, depth,
                                        config):
        if scenario == "alternating_bit":
            depth = min(depth, 4)  # the service tree is one chain
        make = SCENARIOS[scenario]
        base = make().explore(depth)
        assert not base.truncated
        got = make(**config).explore(depth)
        assert got.digest() == base.digest()
        assert got.nodes_explored == base.nodes_explored


class TestTruncateThenResumePerStrategy:
    @settings(max_examples=25, deadline=None)
    @given(budget=st.integers(1, 300), config=configs)
    def test_resume_digest_equals_straight_run(self, budget, config):
        straight = dfm_solver().explore(4)
        partial = dfm_solver(**config).explore(4, max_nodes=budget)
        if not partial.truncated:
            assert partial.digest() == straight.digest()
            return
        ckpt = SolverCheckpoint.from_json(
            partial.checkpoint().to_json())
        resumed = dfm_solver(**config).explore(4, resume_from=ckpt)
        assert not resumed.truncated
        assert resumed.digest() == straight.digest()
        assert resumed.nodes_explored == straight.nodes_explored


class TestQueryAgreement:
    @settings(max_examples=25, deadline=None)
    @given(scenario=st.sampled_from(sorted(SCENARIOS)),
           text=st.sampled_from(
               ("true", "length >= 2", "on:b >= 1", "on:out >= 1",
                "length >= 99")),
           mode=st.sampled_from(("exists", "all")),
           config=configs)
    def test_query_equals_enumerate_then_filter(self, scenario, text,
                                                mode, config):
        depth = 4
        make = SCENARIOS[scenario]
        enumerated = make().explore(depth)
        assert not enumerated.truncated
        pred = parse_predicate(text)
        matching = [t for t in enumerated.finite_solutions
                    if pred(t)]
        expected = (bool(matching) if mode == "exists"
                    else len(matching)
                    == len(enumerated.finite_solutions))
        answer = make(**config).query(text, depth, mode=mode)
        assert answer.holds is expected
