"""Property-based tests: order laws of the sequence and trace domains."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.seq import SEQ_CPO, EMPTY, FiniteSeq, fseq
from repro.seq.ordering import seq_eq_upto, seq_leq

ints = st.integers(min_value=-3, max_value=5)
seqs = st.lists(ints, max_size=8).map(FiniteSeq)


class TestPrefixOrderLaws:
    @given(seqs)
    def test_reflexive(self, s):
        assert seq_leq(s, s)

    @given(seqs, seqs)
    def test_antisymmetric(self, a, b):
        if seq_leq(a, b) and seq_leq(b, a):
            assert a == b

    @given(seqs, seqs, seqs)
    def test_transitive(self, a, b, c):
        if seq_leq(a, b) and seq_leq(b, c):
            assert seq_leq(a, c)

    @given(seqs)
    def test_bottom_least(self, s):
        assert seq_leq(EMPTY, s)

    @given(seqs, seqs)
    def test_leq_iff_take(self, a, b):
        # a ⊑ b iff b's first |a| elements are a
        assert seq_leq(a, b) == (b.take(len(a)) == a and
                                 len(b) >= len(a))


class TestConcatInteraction:
    @given(seqs, seqs)
    def test_left_factor_is_prefix(self, a, b):
        assert seq_leq(a, a + b)

    @given(seqs, seqs, seqs)
    def test_concat_monotone_right(self, a, b, c):
        if seq_leq(b, c):
            assert seq_leq(a + b, a + c)

    @given(seqs, seqs)
    def test_lengths_add(self, a, b):
        assert len(a + b) == len(a) + len(b)


class TestPreRelation:
    @given(seqs, ints)
    def test_append_gives_pre(self, s, x):
        assert s.pre(s.append(x))

    @given(seqs, seqs)
    def test_pre_implies_proper_prefix(self, a, b):
        if a.pre(b):
            assert a.is_proper_prefix_of(b)
            assert len(b) == len(a) + 1

    @given(seqs)
    def test_prefix_chain_structure(self, s):
        prefixes = list(s.prefixes())
        assert len(prefixes) == len(s) + 1
        for u, v in zip(prefixes, prefixes[1:]):
            assert u.pre(v)
        assert SEQ_CPO.lub_chain(prefixes) == s


class TestEqUpto:
    @given(seqs, seqs, st.integers(min_value=0, max_value=10))
    def test_false_is_conclusive(self, a, b, depth):
        # if bounded equality says no, exact equality is no
        if not seq_eq_upto(a, b, depth):
            assert a != b

    @given(seqs, st.integers(min_value=0, max_value=10))
    def test_reflexive_at_any_depth(self, s, depth):
        assert seq_eq_upto(s, s, depth)
