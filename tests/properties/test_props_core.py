"""Property-based tests of the core theorems on random finite traces."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channels.channel import Channel
from repro.channels.event import Event
from repro.core.composition import Component, ComposedNetwork
from repro.core.description import Description, combine
from repro.core.solver import SmoothSolutionSolver
from repro.functions.base import chan
from repro.functions.seq_fns import even_of, odd_of
from repro.traces.trace import Trace

B = Channel("b", alphabet={0, 2})
C = Channel("c", alphabet={1, 3})
D = Channel("d", alphabet={0, 1, 2, 3})

EVENTS = [Event(B, 0), Event(B, 2), Event(C, 1), Event(C, 3),
          Event(D, 0), Event(D, 1), Event(D, 2), Event(D, 3)]

traces = st.lists(st.sampled_from(EVENTS), max_size=7).map(Trace.finite)


def dfm():
    return combine([
        Description(even_of(chan(D)), chan(B)),
        Description(odd_of(chan(D)), chan(C)),
    ], name="dfm")


class TestLemma2Property:
    @given(traces)
    def test_lemma2(self, t):
        desc = dfm()
        if desc.is_smooth_solution(t):
            assert desc.lemma2_holds(t, depth=t.length())


class TestTheorem1Property:
    @given(traces)
    def test_equivalence(self, t):
        desc = dfm()
        assert desc.is_smooth_solution(t) == \
            desc.is_smooth_solution_thm1(t)


class TestTheorem2Property:
    @given(traces)
    @settings(max_examples=60)
    def test_sublemma(self, t):
        net = ComposedNetwork([
            Component("dfm-even", frozenset({B, D}),
                      Description(even_of(chan(D)), chan(B))),
            Component("dfm-odd", frozenset({C, D}),
                      Description(odd_of(chan(D)), chan(C))),
        ])
        assert net.sublemma_agrees(t)


class TestSolverSoundness:
    @given(st.integers(min_value=0, max_value=3))
    @settings(max_examples=8, deadline=None)
    def test_everything_enumerated_is_smooth(self, depth):
        desc = dfm()
        solver = SmoothSolutionSolver.over_channels(desc, [B, C, D])
        result = solver.explore(depth)
        for s in result.finite_solutions:
            assert desc.is_smooth_solution(s)

    @given(traces)
    @settings(max_examples=60)
    def test_smooth_prefixes_are_tree_nodes(self, t):
        # every prefix of a smooth solution is a node of the tree
        desc = dfm()
        solver = SmoothSolutionSolver.over_channels(desc, [B, C, D])
        if desc.is_smooth_solution(t):
            for prefix in t.prefixes():
                assert solver.is_node(prefix)


class TestProjectionProperties:
    @given(traces)
    def test_projection_partitions_length(self, t):
        assert (t.project({B, C}).length() + t.project({D}).length()
                == t.length())

    @given(traces)
    def test_projection_idempotent(self, t):
        once = t.project({B})
        assert once.project({B}) == once

    @given(traces)
    def test_fact_f4_property(self, t):
        from repro.traces.projection import fact_f4

        for u, v in t.pre_pairs(t.length()):
            assert fact_f4(u, v, {B, C})
