"""Property-based tests of the constructive witness machinery.

The fork and fair-merge processes decide finite-trace membership by
*constructing* a smooth solution.  These properties validate the
constructions against randomly generated valid (and invalid) visible
traces.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channels.event import Event
from repro.processes import fork, merge
from repro.traces.trace import Trace


def fork_parts():
    process = fork.make()
    channels = {c.name: c for c in process.channels}
    return process, channels["c"], channels["d"], channels["e"]


def merge_parts():
    process = merge.make_fair_merge()
    channels = {c.name: c for c in process.channels}
    return process, channels["c"], channels["d"], channels["e"]


messages = st.sampled_from([0, 1, 2])


@st.composite
def valid_fork_traces(draw):
    """Inputs arrive in order; each is later routed to d or e."""
    process, c, d, e = fork_parts()
    items = draw(st.lists(messages, max_size=4))
    sides = [draw(st.sampled_from([0, 1])) for _ in items]
    events = [Event(c, m) for m in items]
    # outputs appended afterwards in input order (a valid schedule)
    for m, side in zip(items, sides):
        events.append(Event(d if side == 0 else e, m))
    return Trace.finite(events)


@st.composite
def valid_merge_traces(draw):
    process, c, d, e = merge_parts()
    left = draw(st.lists(messages, max_size=3))
    right = draw(st.lists(messages, max_size=3))
    # one interleaving chosen at random
    li, ri = 0, 0
    order = []
    while li < len(left) or ri < len(right):
        take_left = li < len(left) and (
            ri >= len(right) or draw(st.booleans())
        )
        if take_left:
            order.append(left[li])
            li += 1
        else:
            order.append(right[ri])
            ri += 1
    events = [Event(c, m) for m in left]
    events += [Event(d, m) for m in right]
    events += [Event(e, m) for m in order]
    return Trace.finite(events)


class TestForkWitnesses:
    @given(valid_fork_traces())
    @settings(max_examples=40, deadline=None)
    def test_valid_traces_accepted(self, t):
        process, c, d, e = fork_parts()
        assert process.is_trace(t, depth=24)

    @given(valid_fork_traces())
    @settings(max_examples=25, deadline=None)
    def test_witness_is_smooth_and_projects(self, t):
        process, c, d, e = fork_parts()
        b = next(iter(process.auxiliary_channels))
        w = fork.witness(t, b, c, d, e)
        assert w is not None
        assert process.system.is_smooth_solution(w, depth=24)

    @given(st.lists(messages, min_size=1, max_size=3))
    @settings(max_examples=20, deadline=None)
    def test_unrouted_inputs_rejected(self, items):
        process, c, d, e = fork_parts()
        t = Trace.finite([Event(c, m) for m in items])
        assert not process.is_trace(t, depth=16)


class TestMergeWitnesses:
    @given(valid_merge_traces())
    @settings(max_examples=40, deadline=None)
    def test_valid_merges_accepted(self, t):
        process, c, d, e = merge_parts()
        assert process.is_trace(t, depth=24)

    @given(valid_merge_traces())
    @settings(max_examples=25, deadline=None)
    def test_witness_structure(self, t):
        process, c, d, e = merge_parts()
        b = next(iter(process.auxiliary_channels))
        w = merge.witness(t, b, c, d, e)
        assert w is not None
        # the witness adds exactly one b-event per output
        assert w.count_on(b) == t.count_on(e)

    @given(st.lists(messages, min_size=1, max_size=3))
    @settings(max_examples=20, deadline=None)
    def test_invented_outputs_rejected(self, items):
        process, c, d, e = merge_parts()
        t = Trace.finite([Event(e, m) for m in items])
        assert not process.is_trace(t, depth=16)


class TestLossyWitnesses:
    """Property tests for the lossy-channel routing (extension)."""

    @staticmethod
    def _parts():
        from repro.processes import lossy

        process = lossy.make()
        chans = {c.name: c for c in process.channels}
        return process, chans["c"], chans["d"]

    @given(st.lists(messages, max_size=5), st.data())
    @settings(max_examples=40, deadline=None)
    def test_any_subsequence_is_a_trace(self, items, data):
        process, c, d = self._parts()
        keep = [data.draw(st.booleans()) for _ in items]
        delivered = [m for m, k in zip(items, keep) if k]
        t = Trace.finite(
            [Event(c, m) for m in items]
            + [Event(d, m) for m in delivered]
        )
        assert process.is_trace(t, depth=24)

    @given(st.lists(messages, min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_route_bits_reconstruct_delivery(self, items):
        from repro.processes.lossy import route

        process, c, d = self._parts()
        # deliver every other item
        delivered = items[::2]
        t = Trace.finite(
            [Event(c, m) for m in items]
            + [Event(d, m) for m in delivered]
        )
        bits = route(t, c, d)
        assert bits is not None
        reconstructed = [
            m for m, bit in zip(items, bits) if bit == "T"
        ]
        assert reconstructed == delivered
