"""Property-based tests: monotonicity/prefix-stability of every
sequence operation used by descriptions (the §3 continuity assumption)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.functions.logic import and_map, r_map
from repro.functions.seq_fns import (
    affine,
    brock_f,
    count_ticks,
    even_filter,
    odd_filter,
    scale,
    select_by_oracle,
    tag_with,
    tagged_filter,
    true_filter,
    untag,
    until_first_f,
)
from repro.seq import FiniteSeq
from repro.seq.ordering import seq_leq

ints = st.integers(min_value=-4, max_value=7)
int_seqs = st.lists(ints, max_size=10).map(FiniteSeq)
bits = st.sampled_from(["T", "F"])
bit_seqs = st.lists(bits, max_size=10).map(FiniteSeq)
tag_seqs = st.lists(
    st.tuples(st.sampled_from([0, 1]), ints), max_size=8
).map(FiniteSeq)

UNARY_INT = [even_filter, odd_filter,
             lambda s: scale(2, s), lambda s: affine(2, 1, s),
             lambda s: tag_with(0, s), brock_f]
UNARY_BIT = [true_filter, until_first_f, count_ticks, r_map]


@pytest.mark.parametrize("fn", UNARY_INT)
class TestUnaryIntMonotone:
    @given(s=int_seqs, extra=st.lists(ints, max_size=4))
    def test_prefix_stable(self, fn, s, extra):
        extended = s + FiniteSeq(extra)
        assert seq_leq(fn(s), fn(extended))


@pytest.mark.parametrize("fn", UNARY_BIT)
class TestUnaryBitMonotone:
    @given(s=bit_seqs, extra=st.lists(bits, max_size=4))
    def test_prefix_stable(self, fn, s, extra):
        extended = s + FiniteSeq(extra)
        assert seq_leq(fn(s), fn(extended))


class TestBinaryMonotone:
    @given(a=bit_seqs, b=bit_seqs, ea=st.lists(bits, max_size=3),
           eb=st.lists(bits, max_size=3))
    def test_and_map(self, a, b, ea, eb):
        out = and_map(a, b)
        assert seq_leq(out, and_map(a + FiniteSeq(ea), b))
        assert seq_leq(out, and_map(a, b + FiniteSeq(eb)))
        assert seq_leq(out,
                       and_map(a + FiniteSeq(ea), b + FiniteSeq(eb)))

    @given(s=int_seqs, o=bit_seqs, es=st.lists(ints, max_size=3),
           eo=st.lists(bits, max_size=3))
    def test_select_by_oracle(self, s, o, es, eo):
        out = select_by_oracle(s, o, "T")
        assert seq_leq(
            out,
            select_by_oracle(s + FiniteSeq(es), o + FiniteSeq(eo),
                             "T"),
        )


class TestAlgebraicIdentities:
    @given(int_seqs)
    def test_even_odd_partition(self, s):
        assert len(even_filter(s)) + len(odd_filter(s)) == len(s)

    @given(int_seqs)
    def test_tag_untag_roundtrip(self, s):
        assert untag(tag_with(1, s)) == s

    @given(tag_seqs)
    def test_tagged_filters_partition(self, s):
        assert len(tagged_filter(0, s)) + len(tagged_filter(1, s)) \
            == len(s)

    @given(bit_seqs)
    def test_r_map_preserves_length(self, s):
        assert len(r_map(s)) == len(s)
        assert all(x == "T" for x in r_map(s))

    @given(bit_seqs)
    def test_until_first_f_has_no_f(self, s):
        assert "F" not in until_first_f(s).items

    @given(bit_seqs)
    def test_count_ticks_value(self, s):
        out = count_ticks(s)
        if "F" in s.items:
            first_f = s.items.index("F")
            assert out == FiniteSeq([first_f])
        else:
            assert len(out) == 0

    @given(int_seqs)
    def test_brock_f_semantics(self, s):
        out = brock_f(s)
        if len(s) >= 2:
            assert out == FiniteSeq([s.item(0) + 1])
        else:
            assert len(out) == 0

    @given(a=bit_seqs, b=bit_seqs)
    def test_and_length_is_min(self, a, b):
        assert len(and_map(a, b)) == min(len(a), len(b))

    @given(s=int_seqs, o=bit_seqs)
    def test_oracle_split_partitions_routed_prefix(self, s, o):
        routed = min(len(s), len(o))
        t_side = select_by_oracle(s, o, "T")
        f_side = select_by_oracle(s, o, "F")
        assert len(t_side) + len(f_side) == routed
