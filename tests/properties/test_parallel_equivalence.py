"""Serial/parallel equivalence of the conformance grid.

The parallel executor's correctness claim is total: farming the grid
cells over worker processes changes *nothing* observable — per-cell
outcomes, run digests and flight-recorder schedule digests are
bit-for-bit identical to the serial path.  This is the operational
face of the cells' independence (each cell is a fresh plan instance
plus a fresh seeded oracle; no shared state to race on — the
generalized Kahn principle that justifies Theorem 2's composition).
"""

import multiprocessing

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.par import get_scenario, run_conformance_parallel

FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()

pytestmark = pytest.mark.skipif(
    not FORK_AVAILABLE, reason="parallel executor requires fork")

#: Hypothesis budget: each example runs a whole grid twice, so keep
#: the example count low and the deadline off.
GRID_SETTINGS = settings(
    max_examples=4, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def fingerprint(report):
    """Everything observable about a grid, cell by cell."""
    return [
        (c.plan, c.seed, c.outcome, c.result.digest(),
         c.schedule.digest() if c.schedule is not None else None)
        for c in report.cases
    ]


def run_both(scenario, seeds, plans=None):
    serial = run_conformance_parallel(
        scenario, seeds=seeds, plans=plans, workers=1)
    parallel = run_conformance_parallel(
        scenario, seeds=seeds, plans=plans, workers=4)
    return serial, parallel


class TestDfmEquivalence:
    @GRID_SETTINGS
    @given(seeds=st.lists(st.integers(min_value=0, max_value=50),
                          min_size=1, max_size=3, unique=True))
    def test_outcomes_and_digests_identical(self, seeds):
        serial, parallel = run_both("dfm", seeds)
        assert fingerprint(serial) == fingerprint(parallel)

    def test_plan_subset_equivalence(self):
        sc = get_scenario("dfm")
        plans = {"drop": sc.plans["drop"]}
        serial, parallel = run_both("dfm", [0, 1, 2], plans=plans)
        assert fingerprint(serial) == fingerprint(parallel)


class TestAlternatingBitEquivalence:
    @GRID_SETTINGS
    @given(seeds=st.lists(st.integers(min_value=0, max_value=30),
                          min_size=1, max_size=2, unique=True))
    def test_outcomes_and_digests_identical(self, seeds):
        serial, parallel = run_both("alternating_bit", seeds)
        assert fingerprint(serial) == fingerprint(parallel)


class TestEquivalenceIsExact:
    def test_schedules_not_just_digests(self):
        """Decision streams match entry by entry, not only by hash."""
        serial, parallel = run_both("dfm", [0])
        for a, b in zip(serial.cases, parallel.cases):
            assert a.schedule.agent_picks == b.schedule.agent_picks
            assert a.schedule.choice_picks == b.schedule.choice_picks
            assert a.schedule.rng_draws == b.schedule.rng_draws

    def test_repeated_parallel_runs_are_deterministic(self):
        a = run_conformance_parallel("dfm", seeds=[0, 1], workers=4)
        b = run_conformance_parallel("dfm", seeds=[0, 1], workers=4)
        assert fingerprint(a) == fingerprint(b)
