"""Determinism properties backing the flight recorder's guarantees.

The recorder's value rests on two facts: (1) a seeded run is a pure
function of its seeds — re-running it yields the identical digest —
and (2) nothing about the digest or the decision stream depends on
the Python process (hash randomization, dict iteration quirks).
"""

import os
import subprocess
import sys
import textwrap

import pytest

from repro.channels.channel import Channel
from repro.faults import DropFault, FaultPlan
from repro.kahn.agents import dfm_agent, source_agent
from repro.kahn.scheduler import RandomOracle, run_network

B = Channel("b", alphabet={0, 2})
C = Channel("c", alphabet={1, 3})
D = Channel("d", alphabet={0, 1, 2, 3})


def agents():
    return {"eb": source_agent(B, [0, 2, 0, 2]),
            "dfm": dfm_agent(B, C, D)}


def plan(seed):
    return FaultPlan(
        {B: DropFault(seed=seed, p=0.4, max_consecutive_drops=2)},
        name="drop")


class TestSameSeedSameDigest:
    @pytest.mark.parametrize("seed", [0, 7, 11, 42])
    def test_without_faults(self, seed):
        a = run_network(agents(), [B, C, D], RandomOracle(seed))
        b = run_network(agents(), [B, C, D], RandomOracle(seed))
        assert a.digest() == b.digest()

    @pytest.mark.parametrize("seed", [0, 7, 11, 42])
    def test_with_faults(self, seed):
        a = run_network(agents(), [B, C, D], RandomOracle(seed),
                        fault_plan=plan(seed))
        b = run_network(agents(), [B, C, D], RandomOracle(seed),
                        fault_plan=plan(seed))
        assert a.digest() == b.digest()

    def test_recording_does_not_perturb_the_run(self):
        plain = run_network(agents(), [B, C, D], RandomOracle(7),
                            fault_plan=plan(7))
        recorded = run_network(agents(), [B, C, D], RandomOracle(7),
                               fault_plan=plan(7), record=True)
        assert plain.digest() == recorded.digest()

    def test_different_seeds_usually_differ(self):
        digests = {
            run_network(agents(), [B, C, D], RandomOracle(seed),
                        fault_plan=plan(seed)).digest()
            for seed in range(8)
        }
        assert len(digests) > 1


_PROBE = textwrap.dedent("""
    from repro.channels.channel import Channel
    from repro.faults import DropFault, FaultPlan
    from repro.kahn.agents import dfm_agent, source_agent
    from repro.kahn.scheduler import RandomOracle, run_network

    b = Channel("b", alphabet={0, 2})
    c = Channel("c", alphabet={1, 3})
    d = Channel("d", alphabet={0, 1, 2, 3})
    plan = FaultPlan(
        {b: DropFault(seed=5, p=0.4, max_consecutive_drops=2)},
        name="drop")
    result = run_network(
        {"eb": source_agent(b, [0, 2, 0, 2]),
         "dfm": dfm_agent(b, c, d)},
        [b, c, d], RandomOracle(7), fault_plan=plan, record=True)
    print(result.digest())
    print(result.schedule.digest())
""")


def _probe(hash_seed: str) -> list[str]:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    env["PYTHONHASHSEED"] = hash_seed
    proc = subprocess.run(
        [sys.executable, "-c", _PROBE], env=env,
        capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout.split()


class TestCrossProcessStability:
    def test_digests_stable_across_hash_seeds(self):
        # PYTHONHASHSEED changes str/bytes hashing (and therefore set
        # iteration order); neither the run digest nor the recorded
        # decision stream may depend on it
        first = _probe("1")
        second = _probe("4242")
        in_process = _probe("random")
        assert first == second == in_process
        assert len(first) == 2 and all(len(h) == 64 for h in first)
