"""Property tests pinning the compiled hot path to the reference.

Two layers of randomized evidence back the engine swap in
:mod:`repro.core.compiled`:

* the *representation* is lossless — random finite traces survive a
  pack/unpack round trip with equal events, equal hashes and equal
  canonical keys;
* the *order theory* collapses correctly — on finite sequences the
  packed prefix tests agree bit-for-bit with ``seq_leq`` /
  ``seq_leq_upto`` / ``seq_eq_upto`` at every depth ≤ 8.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channels.channel import Channel
from repro.channels.event import Event
from repro.seq.finite import FiniteSeq
from repro.seq.ordering import seq_eq_upto, seq_leq, seq_leq_upto
from repro.seq.packed import (
    pack_seq,
    packed_eq_upto,
    packed_leq,
    packed_leq_upto,
)
from repro.traces.intern import InternTable
from repro.traces.trace import Trace

B = Channel("b", alphabet={0, 2})
C = Channel("c", alphabet={1, 3})
D = Channel("d", alphabet={0, 1, 2, 3})

EVENTS = [Event(B, 0), Event(B, 2), Event(C, 1), Event(C, 3),
          Event(D, 0), Event(D, 1), Event(D, 2), Event(D, 3)]

traces = st.lists(st.sampled_from(EVENTS), max_size=7).map(Trace.finite)

messages = st.one_of(st.integers(-3, 3), st.sampled_from(["T", "F"]))
seqs = st.lists(messages, max_size=8).map(tuple)


def table() -> InternTable:
    return InternTable(EVENTS)


class TestPackedRoundTrip:
    @given(traces)
    def test_round_trip_is_lossless(self, t):
        tab = table()
        packed = tab.pack(t)
        assert len(packed) == t.length()
        back = tab.unpack(packed)
        assert back == t
        assert hash(back) == hash(t)
        assert list(back) == list(t)

    @given(traces)
    def test_round_trip_reuses_canonical_events(self, t):
        # the unpacked trace is built from the table's own Event
        # objects — the identity that keeps digests and cache
        # payloads bit-identical downstream
        tab = table()
        for e in tab.unpack(tab.pack(t)):
            assert e is tab.event_for(tab.intern_event(e))

    @given(traces)
    def test_env_matches_per_channel_projections(self, t):
        tab = table()
        env = tab.env_of(tab.pack(t))
        for ch in (B, C, D):
            cid = tab.channel_ids[ch]
            assert env[cid] == pack_seq(t.sequence_on(ch))

    @given(traces, st.sampled_from(EVENTS))
    def test_extend_env_is_one_step_append(self, t, e):
        tab = table()
        packed = tab.pack(t)
        pair = tab.intern_event(e)
        extended = tab.extend_env(tab.env_of(packed), pair)
        assert extended == tab.env_of(packed + (pair,))


class TestPackedOrderCollapse:
    @given(seqs, seqs)
    def test_leq_agrees_with_seq_leq(self, a, b):
        assert packed_leq(a, b) == \
            seq_leq(FiniteSeq(a), FiniteSeq(b))

    @given(seqs, seqs, st.integers(0, 8))
    def test_leq_upto_agrees_at_every_depth(self, a, b, depth):
        assert packed_leq_upto(a, b, depth) == \
            seq_leq_upto(FiniteSeq(a), FiniteSeq(b), depth)

    @given(seqs, seqs, st.integers(0, 8))
    def test_eq_upto_collapses_to_equality(self, a, b, depth):
        # both-finite ``=_depth`` is exact equality regardless of
        # depth — the collapse that turns the solver's limit check
        # into a tuple compare
        assert packed_eq_upto(a, b, depth) == \
            seq_eq_upto(FiniteSeq(a), FiniteSeq(b), depth)
        assert packed_eq_upto(a, b, depth) == (a == b)

    @given(seqs)
    def test_pack_seq_round_trip(self, a):
        assert pack_seq(FiniteSeq(a)) == a
        assert pack_seq(a) == a
        assert FiniteSeq.from_tuple(pack_seq(FiniteSeq(a))) == \
            FiniteSeq(a)


class TestCompiledFaceAgreement:
    """Every tuple face equals its operation on random finite input."""

    @given(st.lists(st.integers(-4, 9), max_size=8).map(tuple))
    def test_numeric_faces(self, t):
        from repro.functions.seq_fns import (
            brock_f,
            even_filter,
            odd_filter,
        )

        for op in (even_filter, odd_filter, brock_f):
            assert op.tuple_face(t) == pack_seq(op(FiniteSeq(t)))

    @given(st.lists(st.sampled_from(["T", "F"]), max_size=8)
           .map(tuple))
    def test_boolean_faces(self, t):
        from repro.functions.seq_fns import (
            count_ticks,
            false_filter,
            true_filter,
            until_first_f,
        )

        for op in (true_filter, false_filter, until_first_f,
                   count_ticks):
            assert op.tuple_face(t) == pack_seq(op(FiniteSeq(t)))

    @given(st.lists(st.integers(-4, 9), max_size=8).map(tuple))
    @settings(max_examples=40)
    def test_parameterized_faces(self, t):
        from repro.functions.seq_fns import (
            affine_of,
            prepend_block_of,
            prepend_of,
            scale_of,
            tag_of,
            take_of,
        )
        from repro.functions.base import chan

        fns = [scale_of(3, chan(D)), affine_of(2, 1, chan(D)),
               prepend_of(7, chan(D)),
               prepend_block_of((1, 2), chan(D)),
               tag_of(0, chan(D)), take_of(2, chan(D))]
        for fn in fns:
            face = fn.op.tuple_face
            assert face(t) == pack_seq(fn.op(FiniteSeq(t)))
