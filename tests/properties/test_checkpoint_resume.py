"""The checkpoint/resume invariant: truncate-then-resume ≡ straight run.

§3.3 reads solutions off a Kleene-iteration tree; a node budget that
fires mid-exploration leaves the unvisited nodes as iteration
*prefixes*.  Resuming from a checkpoint continues the chain, and the
resulting :class:`~repro.core.solver.SolverResult` must be
digest-identical to the run that never truncated — for every budget,
including ones that cut a BFS level in half.
"""

import pathlib
import sys

import pytest

from repro.cache.checkpoint import SolverCheckpoint
from repro.channels.channel import Channel
from repro.core.description import Description, combine
from repro.core.solver import SmoothSolutionSolver
from repro.functions.base import chan
from repro.functions.seq_fns import even_of, odd_of

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent.parent
           / "examples")
)

B = Channel("b", alphabet={0, 2})
C = Channel("c", alphabet={1, 3})
D = Channel("d", alphabet={0, 1, 2, 3})

DFM_DEPTH = 4


def dfm_solver() -> SmoothSolutionSolver:
    desc = combine([
        Description(even_of(chan(D)), chan(B)),
        Description(odd_of(chan(D)), chan(C)),
    ], name="dfm")
    return SmoothSolutionSolver.over_channels(desc, [B, C, D])


def abp_solver() -> SmoothSolutionSolver:
    from alternating_bit import MESSAGES, OUT, service_spec

    spec = service_spec(MESSAGES).combined()
    return SmoothSolutionSolver.over_channels(spec, [OUT])


class TestDfmResume:
    # budgets straddle level boundaries of the dfm tree (levels have
    # 1, 4, 20, ... nodes), so several of these truncate mid-level
    @pytest.mark.parametrize("budget", [1, 3, 5, 7, 10, 25, 60, 200])
    def test_truncate_resume_digest_equals_straight_run(self, budget):
        straight = dfm_solver().explore(DFM_DEPTH)
        assert not straight.truncated

        solver = dfm_solver()
        partial = solver.explore(DFM_DEPTH, max_nodes=budget)
        assert partial.truncated
        ckpt = partial.checkpoint()
        # the checkpoint survives a pure-JSON round trip
        ckpt = SolverCheckpoint.from_json(ckpt.to_json())
        resumed = dfm_solver().explore(DFM_DEPTH, resume_from=ckpt)
        assert not resumed.truncated
        assert resumed.digest() == straight.digest()
        assert resumed.nodes_explored == straight.nodes_explored

    def test_resume_from_saved_file(self, tmp_path):
        straight = dfm_solver().explore(DFM_DEPTH)
        partial = dfm_solver().explore(DFM_DEPTH, max_nodes=10)
        path = tmp_path / "ck.json"
        partial.checkpoint().save(str(path))
        resumed = dfm_solver().explore(DFM_DEPTH,
                                       resume_from=str(path))
        assert resumed.digest() == straight.digest()

    def test_resume_from_dict(self):
        straight = dfm_solver().explore(DFM_DEPTH)
        partial = dfm_solver().explore(DFM_DEPTH, max_nodes=33)
        resumed = dfm_solver().explore(
            DFM_DEPTH, resume_from=partial.checkpoint().to_dict())
        assert resumed.digest() == straight.digest()

    def test_chained_resume_converges(self):
        # resume with the SAME small budget repeatedly: each call gets
        # a fresh per-call budget, so the chain must terminate at the
        # straight run instead of re-truncating forever
        straight = dfm_solver().explore(DFM_DEPTH)
        result = dfm_solver().explore(DFM_DEPTH, max_nodes=100)
        hops = 0
        while result.truncated:
            hops += 1
            assert hops < 50, "chained resume failed to converge"
            result = dfm_solver().explore(
                DFM_DEPTH, max_nodes=100,
                resume_from=result.checkpoint())
        assert result.digest() == straight.digest()
        assert hops >= 2  # the budget actually forced several hops

    def test_exhausted_checkpoint_resumes_to_itself(self):
        straight = dfm_solver().explore(DFM_DEPTH)
        ckpt = straight.checkpoint()
        assert ckpt.exhausted
        resumed = dfm_solver().explore(DFM_DEPTH, resume_from=ckpt)
        assert resumed.digest() == straight.digest()

    def test_checkpoint_is_pure_json(self):
        import json

        partial = dfm_solver().explore(DFM_DEPTH, max_nodes=10)
        text = partial.checkpoint().to_json()
        doc = json.loads(text)
        assert doc["version"] == 1
        # trace keys are [[channel, message-repr], ...] lists
        for bucket in ("finite_solutions", "frontier", "dead_ends",
                       "unvisited"):
            for key in doc[bucket]:
                for step in key:
                    assert len(step) == 2
                    assert all(isinstance(s, str) for s in step)


class TestAlternatingBitResume:
    def depth(self) -> int:
        from alternating_bit import MESSAGES

        return len(MESSAGES) + 1

    # the ABP service tree is a single chain (4 nodes to the bound),
    # so every budget below that truncates — budget 2 and 3 resume
    # from a mid-chain prefix
    @pytest.mark.parametrize("budget", [1, 2, 3])
    def test_truncate_resume_digest_equals_straight_run(self, budget):
        straight = abp_solver().explore(self.depth())
        assert not straight.truncated

        partial = abp_solver().explore(self.depth(),
                                       max_nodes=budget)
        assert partial.truncated
        ckpt = SolverCheckpoint.from_json(
            partial.checkpoint().to_json())
        resumed = abp_solver().explore(self.depth(),
                                       resume_from=ckpt)
        assert resumed.digest() == straight.digest()


class TestPerStrategyResume:
    """PR 5 pinned truncate-then-resume for the BFS loop; the strategy
    layer extends the invariant to every exploration order, including
    iterative deepening's mid-iteration parking (which carries extra
    ``meta`` state marking already-goal-tested nodes)."""

    @pytest.mark.parametrize(
        "strategy", ["bfs", "best-first", "iterative-deepening"])
    @pytest.mark.parametrize("budget", [1, 7, 40, 200, 696])
    def test_truncate_resume_digest_equals_straight_run(
            self, strategy, budget):
        straight = dfm_solver().explore(DFM_DEPTH)

        def solver():
            return SmoothSolutionSolver.over_channels(
                dfm_solver().description, [B, C, D],
                strategy=strategy)

        partial = solver().explore(DFM_DEPTH, max_nodes=budget)
        assert partial.truncated
        ckpt = SolverCheckpoint.from_json(
            partial.checkpoint().to_json())
        resumed = solver().explore(DFM_DEPTH, resume_from=ckpt)
        assert not resumed.truncated
        assert resumed.digest() == straight.digest()
        assert resumed.nodes_explored == straight.nodes_explored

    def test_deepening_meta_survives_json_round_trip(self):
        solver = SmoothSolutionSolver.over_channels(
            dfm_solver().description, [B, C, D],
            strategy="iterative-deepening")
        partial = solver.explore(DFM_DEPTH, max_nodes=100)
        assert partial.truncated
        doc = partial.checkpoint().to_dict()
        assert doc["meta"]["strategy"] == "iterative-deepening"
        assert isinstance(doc["meta"]["iteration"], int)
        # tested marks are plain trace keys, like every other bucket
        for key in doc["meta"]["tested"]:
            for step in key:
                assert len(step) == 2

    def test_meta_stays_out_of_the_checkpoint_digest(self):
        # two checkpoints of the same parked set must stay
        # digest-comparable even though one carries strategy meta
        solver = SmoothSolutionSolver.over_channels(
            dfm_solver().description, [B, C, D],
            strategy="iterative-deepening")
        partial = solver.explore(DFM_DEPTH, max_nodes=100)
        ckpt = partial.checkpoint()
        stripped = SolverCheckpoint.from_dict(ckpt.to_dict())
        stripped.meta = {}
        assert stripped.digest() == ckpt.digest()


class TestResumeValidation:
    def test_wrong_depth_rejected(self):
        partial = dfm_solver().explore(DFM_DEPTH, max_nodes=10)
        with pytest.raises(ValueError, match="depth"):
            dfm_solver().explore(DFM_DEPTH + 1,
                                 resume_from=partial.checkpoint())

    def test_wrong_limit_depth_rejected(self):
        partial = dfm_solver().explore(DFM_DEPTH, max_nodes=10)
        other = dfm_solver()
        other.limit_depth = 7
        with pytest.raises(ValueError, match="limit_depth"):
            other.explore(DFM_DEPTH,
                          resume_from=partial.checkpoint())

    def test_wrong_description_rejected(self):
        partial = dfm_solver().explore(DFM_DEPTH, max_nodes=10)
        ckpt = partial.checkpoint()
        ckpt.description = "something-else"
        with pytest.raises(ValueError, match="description"):
            dfm_solver().explore(DFM_DEPTH, resume_from=ckpt)

    def test_alien_trace_keys_rejected(self):
        from repro.obs.replay import ReplayDivergence

        partial = dfm_solver().explore(DFM_DEPTH, max_nodes=10)
        ckpt = partial.checkpoint()
        ckpt.unvisited = [[["d", "0"]]]  # not a tree node: no witness
        with pytest.raises(ReplayDivergence):
            dfm_solver().explore(DFM_DEPTH, resume_from=ckpt)

    def test_bad_resume_type_rejected(self):
        with pytest.raises(TypeError):
            dfm_solver().explore(DFM_DEPTH, resume_from=42)

    def test_missing_version_in_dict_rejected(self):
        partial = dfm_solver().explore(DFM_DEPTH, max_nodes=10)
        data = partial.checkpoint().to_dict()
        del data["version"]
        with pytest.raises(ValueError, match="version"):
            dfm_solver().explore(DFM_DEPTH, resume_from=data)
