"""Property-based tests over randomly generated deterministic systems.

Random acyclic Kahn systems — a constant source plus a chain of random
monotone stages — exercise the fixpoint bridge: iteration converges,
the least-fixpoint environment satisfies the equations, and a canonical
realizing trace is a smooth solution (Theorem 4 in the wild).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channels.channel import Channel
from repro.channels.event import Event
from repro.core.description import Description, DescriptionSystem
from repro.core.fixpoint_bridge import KahnSystem, kahn_least_fixpoint
from repro.functions.base import ContinuousFn, chan, const_seq
from repro.functions.seq_fns import (
    affine_of,
    even_of,
    odd_of,
    prepend_of,
    scale_of,
)
from repro.seq.finite import FiniteSeq
from repro.traces.trace import Trace

STAGE_BUILDERS = [
    lambda inner: scale_of(2, inner),
    lambda inner: affine_of(2, 1, inner),
    lambda inner: even_of(inner),
    lambda inner: odd_of(inner),
    lambda inner: prepend_of(0, inner),
]


@st.composite
def random_systems(draw):
    """A source ``x0 ⟵ ⟨…⟩`` plus 1–4 chained stages."""
    source_values = draw(st.lists(
        st.integers(min_value=0, max_value=5), max_size=4
    ))
    n_stages = draw(st.integers(min_value=1, max_value=4))
    stage_picks = [
        draw(st.sampled_from(range(len(STAGE_BUILDERS))))
        for _ in range(n_stages)
    ]
    channels = [Channel(f"x{i}") for i in range(n_stages + 1)]
    descriptions = [
        Description(chan(channels[0]),
                    const_seq(FiniteSeq(source_values))),
    ]
    for i, pick in enumerate(stage_picks):
        rhs: ContinuousFn = STAGE_BUILDERS[pick](chan(channels[i]))
        descriptions.append(Description(chan(channels[i + 1]), rhs))
    return channels, DescriptionSystem(descriptions,
                                       channels=channels)


class TestRandomKahnSystems:
    @given(random_systems())
    @settings(max_examples=40, deadline=None)
    def test_iteration_converges(self, sys_pair):
        channels, system = sys_pair
        semantics = kahn_least_fixpoint(system, max_iterations=50)
        assert semantics.converged

    @given(random_systems())
    @settings(max_examples=40, deadline=None)
    def test_lfp_satisfies_equations(self, sys_pair):
        channels, system = sys_pair
        semantics = kahn_least_fixpoint(system, max_iterations=50)
        assert system.satisfied_by_env(semantics.environment())

    @given(random_systems())
    @settings(max_examples=30, deadline=None)
    def test_canonical_trace_is_smooth(self, sys_pair):
        """Realize the lfp as a trace: emit each stage's *entire*
        sequence before the next stage starts.  Stage k+1's content
        depends only on stage k's (already fully emitted), so every
        message follows its cause and the trace must be smooth.

        (A naive element-wise round-robin is NOT causally correct for
        filter stages — position i of odd(x) can depend on position
        j > i of x — and the checker rejects it; see
        ``test_naive_interleaving_can_fail`` below.)"""
        channels, system = sys_pair
        semantics = kahn_least_fixpoint(system, max_iterations=50)
        env = semantics.environment()

        events = []
        for c in channels:  # topological: the chain order
            events.extend(Event(c, m) for m in env[c])
        t = Trace.finite(events)
        assert system.is_smooth_solution(t)

    def test_naive_interleaving_can_fail(self):
        """The concrete counterexample hypothesis found: with
        ``x3 ⟵ odd(x2)``, emitting x3's output before x2 is complete
        violates smoothness — evidence the checker sees causality, not
        just per-channel content."""
        x0, x1, x2, x3 = (Channel(f"x{i}") for i in range(4))
        system = DescriptionSystem([
            Description(chan(x0), const_seq(FiniteSeq([0]))),
            Description(chan(x1), affine_of(2, 1, chan(x0))),
            Description(chan(x2), prepend_of(0, chan(x1))),
            Description(chan(x3), odd_of(chan(x2))),
        ], channels=[x0, x1, x2, x3])
        naive = Trace.from_pairs([
            (x0, 0), (x1, 1), (x2, 0), (x3, 1), (x2, 1),
        ])
        assert not system.is_smooth_solution(naive)
        causal = Trace.from_pairs([
            (x0, 0), (x1, 1), (x2, 0), (x2, 1), (x3, 1),
        ])
        assert system.is_smooth_solution(causal)

    @given(random_systems())
    @settings(max_examples=30, deadline=None)
    def test_kleene_chain_ascends(self, sys_pair):
        channels, system = sys_pair
        kahn = KahnSystem.from_system(system)
        domain = kahn.domain()
        current = domain.bottom
        for _ in range(6):
            nxt = kahn.step(current)
            assert domain.leq(current, nxt)
            current = nxt
