"""Property-based tests of the operational runtime's channel semantics.

Kahn's channel assumptions — lossless, order-preserving, unbounded FIFO
— are what make the denotational semantics sound.  These properties
check them on randomly generated producer/consumer networks:

* conservation: every received message was previously sent;
* FIFO: per-channel receive order equals send order;
* oracle determinism: the trace is a function of (network, seed).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channels.channel import Channel
from repro.kahn.effects import Recv, Send
from repro.kahn.scheduler import RandomOracle, run_network

X = Channel("x", alphabet={0, 1, 2, 3})
Y = Channel("y", alphabet={0, 1, 2, 3})

messages = st.lists(
    st.integers(min_value=0, max_value=3), max_size=6
)


def producer(channel, items):
    def body():
        for m in items:
            yield Send(channel, m)

    return body


def recording_consumer(channel, log):
    def body():
        while True:
            m = yield Recv(channel)
            log.append(m)

    return body


def relay(src, dst):
    def body():
        while True:
            m = yield Recv(src)
            yield Send(dst, m)

    return body


class TestChannelSemantics:
    @given(messages, st.integers(min_value=0, max_value=50))
    @settings(max_examples=40, deadline=None)
    def test_fifo_order(self, items, seed):
        log: list = []
        result = run_network(
            {"p": producer(X, items)(),
             "c": recording_consumer(X, log)()},
            [X], RandomOracle(seed), max_steps=200,
        )
        assert result.quiescent
        assert log == items

    @given(messages, st.integers(min_value=0, max_value=50))
    @settings(max_examples=40, deadline=None)
    def test_conservation_through_relay(self, items, seed):
        log: list = []
        result = run_network(
            {"p": producer(X, items)(),
             "r": relay(X, Y)(),
             "c": recording_consumer(Y, log)()},
            [X, Y], RandomOracle(seed), max_steps=400,
        )
        assert result.quiescent
        assert log == items
        # the trace records each message once per hop
        assert list(result.trace.messages_on(X)) == items
        assert list(result.trace.messages_on(Y)) == items

    @given(messages, st.integers(min_value=0, max_value=20))
    @settings(max_examples=30, deadline=None)
    def test_oracle_determinism(self, items, seed):
        def build():
            log: list = []
            return {
                "p": producer(X, items)(),
                "r": relay(X, Y)(),
                "c": recording_consumer(Y, log)(),
            }

        a = run_network(build(), [X, Y], RandomOracle(seed),
                        max_steps=400)
        b = run_network(build(), [X, Y], RandomOracle(seed),
                        max_steps=400)
        assert a.trace == b.trace
        assert a.steps == b.steps

    @given(messages)
    @settings(max_examples=20, deadline=None)
    def test_trace_length_is_total_sends(self, items):
        result = run_network(
            {"p": producer(X, items)(), "r": relay(X, Y)()},
            [X, Y], RandomOracle(1), max_steps=400,
        )
        assert result.trace.length() == 2 * len(items)
