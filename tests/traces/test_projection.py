"""Unit tests for repro.traces.projection — Facts F1–F5 of §3.1.3."""

import itertools

import pytest

from repro.channels.channel import Channel
from repro.channels.event import Event
from repro.traces.domain import TRACE_CPO
from repro.traces.projection import (
    fact_f4,
    fact_f5_witness,
    is_projection_of_prefix,
    project,
)
from repro.traces.trace import Trace

B = Channel("b", alphabet={0, 2})
C = Channel("c", alphabet={1, 3})


def t_of(*pairs):
    return Trace.from_pairs(pairs)


class TestFactF1F2:
    """F1: traces form a cpo; F2: a trace is the lub of its prefixes."""

    def test_f1_cpo_laws(self):
        from repro.order.checks import check_cpo

        from repro.traces.domain import TraceCpo

        cpo = TraceCpo(frozenset({B, C}))
        check_cpo(cpo)

    def test_f2_lub_of_prefixes(self):
        t = t_of((B, 0), (C, 1), (B, 2))
        prefixes = list(t.prefixes())
        assert TRACE_CPO.lub_chain(prefixes) == t


class TestFactF3:
    """F3: projection is continuous."""

    def test_monotone(self):
        t = t_of((B, 0), (C, 1), (B, 2))
        for u in t.prefixes():
            for v in t.prefixes():
                if u.is_prefix_of(v):
                    assert u.project({B}).is_prefix_of(v.project({B}))

    def test_continuous_on_lazy(self):
        t = Trace.cycle_pairs([(B, 0), (C, 1)])
        proj = t.project({B})
        # prefix applications approximate the lazy projection
        for n in range(8):
            finite = t.take(n).project({B})
            assert finite.is_prefix_of(proj)


class TestFactF4:
    def test_projection_of_pre_pair(self):
        u = t_of((B, 0))
        v = t_of((B, 0), (C, 1))
        assert fact_f4(u, v, {B})  # u_L = v_L branch
        assert fact_f4(u, v, {C})  # u_L pre v_L branch

    def test_requires_pre(self):
        with pytest.raises(ValueError):
            fact_f4(t_of((B, 0)), t_of((B, 0), (C, 1), (B, 2)), {B})

    def test_exhaustive_over_small_traces(self):
        events = [Event(B, 0), Event(B, 2), Event(C, 1)]
        for combo in itertools.product(events, repeat=3):
            t = Trace.finite(combo)
            for u, v in t.pre_pairs(3):
                assert fact_f4(u, v, {B})
                assert fact_f4(u, v, {C})


class TestFactF5:
    def test_witness_construction(self):
        t = t_of((B, 0), (C, 1), (B, 2), (C, 3))
        proj = t.project({C})
        x, y = proj.take(1), proj.take(2)
        witness = fact_f5_witness(t, {C}, x, y)
        assert witness is not None
        u, v = witness
        assert u.pre(v)
        assert u.project({C}) == x
        assert v.project({C}) == y

    def test_witness_is_shortest(self):
        t = t_of((B, 0), (C, 1), (B, 2))
        proj = t.project({C})
        witness = fact_f5_witness(t, {C}, proj.take(0), proj.take(1))
        assert witness is not None
        _, v = witness
        assert v.length() == 2  # (B,0)(C,1) — shortest with proj ⟨1⟩

    def test_requires_pre(self):
        t = t_of((C, 1), (C, 3))
        proj = t.project({C})
        with pytest.raises(ValueError):
            fact_f5_witness(t, {C}, proj.take(0), proj.take(2))

    def test_no_witness_for_foreign_pair(self):
        t = t_of((B, 0))
        x = Trace.empty()
        y = t_of((C, 1))
        assert fact_f5_witness(t, {C}, x, y) is None


class TestProjectionHelpers:
    def test_project_function(self):
        t = t_of((B, 0), (C, 1))
        assert project(t, {C}) == t_of((C, 1))

    def test_is_projection_of_prefix(self):
        t = t_of((B, 0), (C, 1), (B, 2))
        assert is_projection_of_prefix(t_of((B, 0)), t, {B})
        assert is_projection_of_prefix(t_of((B, 0), (B, 2)), t, {B})
        assert not is_projection_of_prefix(t_of((B, 2)), t, {B})
