"""Unit tests for repro.traces.trace."""

import itertools

import pytest

from repro.channels.channel import Channel
from repro.channels.event import Event
from repro.seq.finite import fseq
from repro.traces.trace import Trace, one_step_extensions

B = Channel("b", alphabet={0, 2, 4})
C = Channel("c", alphabet={1, 3, 5})


def t_of(*pairs):
    return Trace.from_pairs(pairs)


class TestConstruction:
    def test_empty(self):
        assert Trace.empty().length() == 0

    def test_of(self):
        t = Trace.of(Event(B, 0), Event(C, 1))
        assert t.length() == 2

    def test_from_pairs(self):
        t = t_of((B, 0), (C, 1))
        assert t.item(0) == Event(B, 0)

    def test_rejects_non_events(self):
        with pytest.raises(TypeError):
            Trace.finite([1, 2])

    def test_lazy(self):
        t = Trace.lazy(Event(B, 0) for _ in itertools.count())
        assert t.take(2).length() == 2
        assert not t.is_known_finite()

    def test_cycle_pairs(self):
        t = Trace.cycle_pairs([(B, 0), (C, 1)])
        assert t.item(2) == Event(B, 0)

    def test_cycle_pairs_empty_rejected(self):
        with pytest.raises(ValueError):
            Trace.cycle_pairs([])


class TestStructure:
    def test_length_of_lazy_raises(self):
        t = Trace.lazy(Event(B, 0) for _ in itertools.count())
        with pytest.raises(ValueError):
            t.length()

    def test_take(self):
        t = t_of((B, 0), (C, 1), (B, 2))
        assert t.take(2) == t_of((B, 0), (C, 1))

    def test_append(self):
        t = Trace.empty().append(Event(B, 0))
        assert t == t_of((B, 0))

    def test_append_to_lazy_rejected(self):
        t = Trace.lazy(Event(B, 0) for _ in itertools.count())
        with pytest.raises(ValueError):
            t.append(Event(B, 0))

    def test_concat(self):
        t = t_of((B, 0)).concat(t_of((C, 1)))
        assert t == t_of((B, 0), (C, 1))

    def test_iteration(self):
        assert list(t_of((B, 0))) == [Event(B, 0)]

    def test_hash_finite_only(self):
        assert len({t_of((B, 0)), t_of((B, 0))}) == 1
        lazy = Trace.lazy(Event(B, 0) for _ in itertools.count())
        with pytest.raises(ValueError):
            hash(lazy)

    def test_eq_undecidable_for_lazy(self):
        lazy = Trace.lazy(Event(B, 0) for _ in itertools.count())
        with pytest.raises(ValueError):
            lazy == t_of((B, 0))


class TestPrefixStructure:
    def test_is_prefix_of(self):
        assert t_of((B, 0)).is_prefix_of(t_of((B, 0), (C, 1)))
        assert not t_of((C, 1)).is_prefix_of(t_of((B, 0), (C, 1)))

    def test_pre(self):
        assert t_of((B, 0)).pre(t_of((B, 0), (C, 1)))
        assert not t_of((B, 0)).pre(t_of((B, 0), (C, 1), (B, 2)))

    def test_prefixes(self):
        t = t_of((B, 0), (C, 1))
        assert [p.length() for p in t.prefixes()] == [0, 1, 2]

    def test_pre_pairs_finite(self):
        t = t_of((B, 0), (C, 1))
        pairs = list(t.pre_pairs(10))
        assert len(pairs) == 2
        assert pairs[0][0].length() == 0
        assert pairs[1][1] == t

    def test_pre_pairs_depth_bound(self):
        t = Trace.cycle_pairs([(B, 0)])
        assert len(list(t.pre_pairs(5))) == 5

    def test_one_step_extensions(self):
        exts = list(one_step_extensions(
            Trace.empty(), [Event(B, 0), Event(C, 1)]
        ))
        assert exts == [t_of((B, 0)), t_of((C, 1))]


class TestChannelStructure:
    def test_project(self):
        t = t_of((B, 0), (C, 1), (B, 2))
        assert t.project({B}) == t_of((B, 0), (B, 2))

    def test_project_lazy(self):
        t = Trace.cycle_pairs([(B, 0), (C, 1)])
        proj = t.project({C})
        assert proj.take(2).messages_on(C) == fseq(1, 1)

    def test_sequence_on(self):
        t = t_of((B, 0), (C, 1), (B, 2))
        assert t.sequence_on(B).take(10) == fseq(0, 2)

    def test_messages_on(self):
        t = t_of((B, 0), (C, 1))
        assert t.messages_on(C) == fseq(1)

    def test_count_on(self):
        t = t_of((B, 0), (B, 2), (C, 1))
        assert t.count_on(B) == 2

    def test_messages_on_refuses_lazy_traces(self):
        t = Trace.cycle_pairs([(B, 0), (C, 1)])
        with pytest.raises(ValueError, match="sequence_on"):
            t.messages_on(B)
        # the prefix-safe route still works on the same trace
        assert t.sequence_on(B).take(2) == fseq(0, 0)

    def test_count_on_refuses_lazy_traces(self):
        t = Trace.cycle_pairs([(B, 0), (C, 1)])
        with pytest.raises(ValueError, match="sequence_on"):
            t.count_on(B)

    def test_channels_used(self):
        assert t_of((B, 0)).channels_used() == frozenset({B})

    def test_map_events(self):
        t = t_of((B, 0))
        out = t.map_events(lambda e: Event(e.channel, e.message + 2))
        assert out.take(1) == t_of((B, 2))
