"""Unit tests for repro.traces.domain (the trace cpo)."""

import itertools

import pytest

from repro.channels.channel import Channel
from repro.channels.event import Event
from repro.order.poset import NotAChainError
from repro.traces.domain import TRACE_CPO, TraceCpo, trace_eq_upto
from repro.traces.trace import Trace

B = Channel("b", alphabet={0, 1})


def t_of(*messages):
    return Trace.from_pairs([(B, m) for m in messages])


def lazy_zeros():
    return Trace.lazy(Event(B, 0) for _ in itertools.count())


class TestOrder:
    def test_bottom(self):
        assert TRACE_CPO.bottom.length() == 0

    def test_leq(self):
        assert TRACE_CPO.leq(t_of(0), t_of(0, 1))
        assert not TRACE_CPO.leq(t_of(1), t_of(0, 1))

    def test_leq_finite_below_lazy(self):
        assert TRACE_CPO.leq(t_of(0, 0), lazy_zeros())

    def test_leq_lazy_left_raises(self):
        with pytest.raises(ValueError):
            TRACE_CPO.leq(lazy_zeros(), lazy_zeros())

    def test_leq_upto_lazy(self):
        assert TRACE_CPO.leq_upto(lazy_zeros(), lazy_zeros(), 16)

    def test_eq(self):
        assert TRACE_CPO.eq(t_of(0), t_of(0))
        assert not TRACE_CPO.eq(t_of(0), t_of(0, 1))

    def test_rejects_non_traces(self):
        with pytest.raises(TypeError):
            TRACE_CPO.leq(1, t_of(0))


class TestEqUpto:
    def test_agreement(self):
        assert trace_eq_upto(lazy_zeros(), lazy_zeros(), 20)

    def test_disagreement(self):
        assert not trace_eq_upto(t_of(0), t_of(1), 20)

    def test_length_mismatch_within_depth(self):
        assert not trace_eq_upto(t_of(0), t_of(0, 0), 20)

    def test_finite_vs_continuing_lazy(self):
        assert not trace_eq_upto(t_of(0, 0), lazy_zeros(), 20)

    def test_via_cpo_method(self):
        assert TRACE_CPO.eq_upto(lazy_zeros(), lazy_zeros(), 8)


class TestLubs:
    def test_lub_chain(self):
        chain = [Trace.empty(), t_of(0), t_of(0, 1)]
        assert TRACE_CPO.lub_chain(chain) == t_of(0, 1)

    def test_lub_chain_rejects_non_chain(self):
        with pytest.raises(NotAChainError):
            TRACE_CPO.lub_chain([t_of(0), t_of(1)])

    def test_lub_of_chain_fn_growing(self):
        lub = TRACE_CPO.lub_of_chain_fn(lambda k: t_of(*([0] * k)))
        assert lub.take(4).length() == 4

    def test_lub_of_chain_fn_stabilizing(self):
        lub = TRACE_CPO.lub_of_chain_fn(
            lambda k: t_of(*([0] * min(k, 2))), stable_steps=4
        )
        assert lub.take(50).length() == 2


class TestSample:
    def test_sample_with_channels(self):
        cpo = TraceCpo(frozenset({B}))
        sample = cpo.sample()
        assert any(t.length() == 0 for t in sample)
        assert any(t.length() == 2 for t in sample)

    def test_sample_without_channels(self):
        assert TraceCpo().sample() == [Trace.empty()]
