"""Unit tests for repro.seq.lazy (memoized possibly-infinite sequences)."""

import itertools

import pytest

from repro.seq.finite import FiniteSeq, fseq
from repro.seq.lazy import LazySeq, NonProductiveError, as_seq


class TestBasics:
    def test_take_from_infinite(self):
        s = LazySeq(itertools.count())
        assert s.take(3) == fseq(0, 1, 2)

    def test_item(self):
        s = LazySeq(itertools.count(10))
        assert s.item(2) == 12

    def test_memoization_single_pass(self):
        calls = []

        def gen():
            for i in range(5):
                calls.append(i)
                yield i

        s = LazySeq(gen())
        s.take(3)
        s.take(3)
        assert calls == [0, 1, 2]

    def test_unknown_length_until_exhausted(self):
        s = LazySeq(iter([1, 2]))
        assert s.known_length() is None
        s.take(10)
        assert s.known_length() == 2

    def test_item_past_end_raises(self):
        s = LazySeq(iter([1]))
        with pytest.raises(IndexError):
            s.item(5)

    def test_negative_index_rejected(self):
        with pytest.raises(IndexError):
            LazySeq(iter([1])).item(-1)

    def test_negative_take_rejected(self):
        with pytest.raises(ValueError):
            LazySeq(iter([1])).take(-1)

    def test_materialized_length(self):
        s = LazySeq(itertools.count())
        assert s.materialized_length() == 0
        s.take(4)
        assert s.materialized_length() == 4


class TestFromFunction:
    def test_nth(self):
        s = LazySeq.from_function(lambda i: i * i)
        assert s.take(4) == fseq(0, 1, 4, 9)


class TestToFinite:
    def test_materializes_short(self):
        s = LazySeq(iter([1, 2]))
        assert s.to_finite(10) == fseq(1, 2)

    def test_refuses_long(self):
        s = LazySeq(itertools.count())
        with pytest.raises(NonProductiveError):
            s.to_finite(100)


class TestAsSeq:
    def test_passthrough(self):
        s = fseq(1)
        assert as_seq(s) is s

    def test_tuple(self):
        assert isinstance(as_seq((1, 2)), FiniteSeq)

    def test_list(self):
        assert as_seq([1, 2]).take(2) == fseq(1, 2)

    def test_iterator(self):
        assert isinstance(as_seq(iter([1])), LazySeq)

    def test_rejects_scalar(self):
        with pytest.raises(TypeError):
            as_seq(5)

    def test_has_at_least(self):
        s = LazySeq(itertools.count())
        assert s.has_at_least(100)
        t = LazySeq(iter([1]))
        assert not t.has_at_least(2)
