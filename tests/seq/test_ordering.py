"""Unit tests for repro.seq.ordering (prefix order & sequence cpo)."""

import itertools

import pytest

from repro.order.poset import NotAChainError
from repro.seq.finite import EMPTY, fseq
from repro.seq.lazy import LazySeq
from repro.seq.ordering import (
    SEQ_CPO,
    SequenceCpo,
    seq_eq_upto,
    seq_leq,
    seq_leq_upto,
)


def lazy_count():
    return LazySeq(itertools.count())


class TestSeqLeq:
    def test_finite_finite(self):
        assert seq_leq(fseq(1), fseq(1, 2))
        assert not seq_leq(fseq(2), fseq(1, 2))

    def test_empty_below_all(self):
        assert seq_leq(EMPTY, lazy_count())

    def test_finite_below_infinite(self):
        assert seq_leq(fseq(0, 1), lazy_count())
        assert not seq_leq(fseq(5), lazy_count())

    def test_secretly_finite_lazy_left(self):
        # a lazy sequence that is actually short gets probed and decided
        assert seq_leq(LazySeq(iter([0, 1])), lazy_count())

    def test_truly_lazy_left_raises(self):
        with pytest.raises(ValueError):
            seq_leq(lazy_count(), lazy_count())


class TestBoundedComparisons:
    def test_leq_upto_yes(self):
        assert seq_leq_upto(lazy_count(), lazy_count(), 50)

    def test_leq_upto_conclusive_no(self):
        a = LazySeq(itertools.count(1))
        assert not seq_leq_upto(a, lazy_count(), 50)

    def test_eq_upto_agreeing_prefixes(self):
        assert seq_eq_upto(lazy_count(), lazy_count(), 64)

    def test_eq_upto_disagreement(self):
        assert not seq_eq_upto(fseq(1), fseq(2), 8)

    def test_eq_upto_length_mismatch_within_depth(self):
        assert not seq_eq_upto(fseq(1), fseq(1, 2), 8)

    def test_eq_upto_finite_vs_longer_lazy(self):
        # a ends within depth, b keeps going ⇒ conclusive False
        assert not seq_eq_upto(fseq(0, 1), lazy_count(), 8)

    def test_eq_upto_exact_when_both_finite(self):
        assert seq_eq_upto(fseq(1, 2), fseq(1, 2), 100)


class TestSequenceCpo:
    def test_bottom(self):
        assert SEQ_CPO.bottom == EMPTY

    def test_leq_coerces_tuples(self):
        assert SEQ_CPO.leq((1,), (1, 2))

    def test_eq_exact_finite(self):
        assert SEQ_CPO.eq(fseq(1), fseq(1))
        assert not SEQ_CPO.eq(fseq(1), fseq(1, 2))

    def test_rejects_non_sequences(self):
        with pytest.raises(TypeError):
            SEQ_CPO.leq(5, fseq(1))

    def test_lub_chain(self):
        assert SEQ_CPO.lub_chain([EMPTY, fseq(1)]) == fseq(1)
        with pytest.raises(NotAChainError):
            SEQ_CPO.lub_chain([fseq(1), fseq(2)])

    def test_sample_respects_alphabet(self):
        cpo = SequenceCpo(frozenset({"T", "F"}))
        for s in cpo.sample():
            assert all(x in ("T", "F") for x in s)


class TestLubOfChainFn:
    def test_growing_chain_yields_lazy_lub(self):
        # nth(k) = ⟨0, 1, …, k-1⟩; lub is the naturals
        lub = SEQ_CPO.lub_of_chain_fn(lambda k: fseq(*range(k)))
        assert lub.take(5) == fseq(0, 1, 2, 3, 4)

    def test_stabilizing_chain_yields_finite(self):
        lub = SEQ_CPO.lub_of_chain_fn(
            lambda k: fseq(*range(min(k, 3))), stable_steps=8
        )
        assert lub.to_finite(100) == fseq(0, 1, 2)

    def test_non_ascending_chain_detected(self):
        lub = SEQ_CPO.lub_of_chain_fn(
            lambda k: fseq(9) if k == 1 else fseq(*range(k))
        )
        with pytest.raises(NotAChainError):
            lub.take(5)
