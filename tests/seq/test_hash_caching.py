"""Cached hashes on ``FiniteSeq``/``Trace`` — compute once, pickle never.

The solver's packed path interns traces in dict-keyed tables, so every
node's hash used to be recomputed on each lookup.  Both classes now
memoize ``__hash__`` in a ``_hash`` slot; these tests pin that the
memo (a) actually short-circuits element hashing, (b) survives the
frozen-``__setattr__`` guard, and (c) never travels through pickle —
a cached hash from another process is wrong under Python's per-process
hash randomization.
"""

import pickle

from repro.channels.channel import Channel
from repro.channels.event import Event
from repro.seq.finite import FiniteSeq
from repro.traces.trace import Trace

B = Channel("b")


class CountingMessage:
    """A message whose ``__hash__`` calls are observable."""

    hash_calls = 0

    def __init__(self, value):
        self.value = value

    def __hash__(self):
        type(self).hash_calls += 1
        return hash(("counting", self.value))

    def __eq__(self, other):
        return (isinstance(other, CountingMessage)
                and self.value == other.value)

    def __repr__(self):
        return f"CountingMessage({self.value!r})"


class TestFiniteSeqHashCache:
    def test_second_hash_does_no_element_work(self):
        CountingMessage.hash_calls = 0
        s = FiniteSeq(tuple(CountingMessage(i) for i in range(5)))
        h1 = hash(s)
        first_pass = CountingMessage.hash_calls
        assert first_pass >= 5
        h2 = hash(s)
        assert h2 == h1
        assert CountingMessage.hash_calls == first_pass

    def test_take_full_length_shares_the_cache(self):
        CountingMessage.hash_calls = 0
        s = FiniteSeq(tuple(CountingMessage(i) for i in range(4)))
        hash(s)
        calls = CountingMessage.hash_calls
        # take(n >= len) returns self, so its hash is already cached
        assert hash(s.take(10)) == hash(s)
        assert CountingMessage.hash_calls == calls

    def test_frozen_guard_still_rejects_mutation(self):
        s = FiniteSeq((1, 2))
        hash(s)
        try:
            s.items = (3,)
        except AttributeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("FiniteSeq should stay frozen")

    def test_pickle_drops_the_cached_hash(self):
        s = FiniteSeq((1, 2, 3))
        hash(s)
        clone = pickle.loads(pickle.dumps(s))
        assert clone == s
        assert clone._hash is None
        assert hash(clone) == hash(s)  # same process: same result

    def test_from_tuple_equals_constructor(self):
        assert FiniteSeq.from_tuple((1, 2)) == FiniteSeq((1, 2))
        assert hash(FiniteSeq.from_tuple((1, 2))) == \
            hash(FiniteSeq((1, 2)))


class TestTraceHashCache:
    def _trace(self, n=4):
        return Trace.finite(
            [Event(B, CountingMessage(i)) for i in range(n)])

    def test_second_hash_does_no_element_work(self):
        t = self._trace()
        CountingMessage.hash_calls = 0
        h1 = hash(t)
        first_pass = CountingMessage.hash_calls
        assert first_pass >= 4
        assert hash(t) == h1
        assert CountingMessage.hash_calls == first_pass

    def test_equal_traces_equal_hashes(self):
        assert hash(self._trace()) == hash(self._trace())

    def test_name_does_not_enter_the_hash(self):
        a = Trace.finite([Event(B, 1)], name="a")
        b = Trace.finite([Event(B, 1)], name="b")
        assert a == b
        assert hash(a) == hash(b)

    def test_pickle_drops_the_cached_hash(self):
        t = Trace.finite([Event(B, 1), Event(B, 2)], name="t")
        hash(t)
        clone = pickle.loads(pickle.dumps(t))
        assert clone == t
        assert clone.name == t.name
        assert clone._hash is None
        assert hash(clone) == hash(t)

    def test_digest_unchanged_by_hash_caching(self):
        # the canonical JSON key (what digests are built from) sees
        # events only, never the memo slot
        from repro.core.solver import _trace_key

        t = self._trace()
        before = _trace_key(t)
        hash(t)
        assert _trace_key(t) == before
