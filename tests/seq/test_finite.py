"""Unit tests for repro.seq.finite (FiniteSeq and the pre relation)."""

import pytest

from repro.seq.finite import EMPTY, FiniteSeq, fseq


class TestConstruction:
    def test_from_iterable(self):
        assert FiniteSeq([1, 2]).items == (1, 2)

    def test_fseq_shorthand(self):
        assert fseq(1, 2, 3) == FiniteSeq((1, 2, 3))

    def test_empty_constant(self):
        assert len(EMPTY) == 0
        assert not EMPTY

    def test_immutable(self):
        s = fseq(1)
        with pytest.raises(AttributeError):
            s.items = (2,)


class TestSeqInterface:
    def test_item(self):
        assert fseq(4, 5).item(1) == 5

    def test_item_out_of_range(self):
        with pytest.raises(IndexError):
            fseq(4).item(1)

    def test_item_negative_rejected(self):
        with pytest.raises(IndexError):
            fseq(4).item(-1)

    def test_take(self):
        assert fseq(1, 2, 3).take(2) == fseq(1, 2)

    def test_take_beyond_length(self):
        s = fseq(1)
        assert s.take(10) is s

    def test_take_negative_rejected(self):
        with pytest.raises(ValueError):
            fseq(1).take(-1)

    def test_known_length(self):
        assert fseq(1, 2).known_length() == 2

    def test_has_at_least(self):
        assert fseq(1, 2).has_at_least(2)
        assert not fseq(1, 2).has_at_least(3)

    def test_head(self):
        assert fseq(7, 8).head() == 7
        with pytest.raises(IndexError):
            EMPTY.head()

    def test_iter_upto(self):
        assert list(fseq(1, 2, 3).iter_upto(2)) == [1, 2]


class TestAlgebra:
    def test_concat(self):
        assert fseq(1).concat(fseq(2, 3)) == fseq(1, 2, 3)

    def test_plus_operator(self):
        assert fseq(1) + fseq(2) == fseq(1, 2)

    def test_concat_with_empty(self):
        assert fseq(1) + EMPTY == fseq(1)
        assert EMPTY + fseq(1) == fseq(1)

    def test_append(self):
        assert fseq(1).append(2) == fseq(1, 2)

    def test_drop(self):
        assert fseq(1, 2, 3).drop(1) == fseq(2, 3)
        with pytest.raises(ValueError):
            fseq(1).drop(-1)

    def test_hashable(self):
        assert len({fseq(1), fseq(1), fseq(2)}) == 2

    def test_equality_not_with_tuples(self):
        assert fseq(1) != (1,)


class TestPrefixStructure:
    def test_is_prefix_of(self):
        assert fseq(1).is_prefix_of(fseq(1, 2))
        assert EMPTY.is_prefix_of(fseq(1))
        assert not fseq(2).is_prefix_of(fseq(1, 2))

    def test_is_prefix_of_self(self):
        assert fseq(1, 2).is_prefix_of(fseq(1, 2))

    def test_proper_prefix(self):
        assert fseq(1).is_proper_prefix_of(fseq(1, 2))
        assert not fseq(1, 2).is_proper_prefix_of(fseq(1, 2))

    def test_pre_relation(self):
        # the paper's u pre v: prefix and exactly one shorter
        assert fseq(1).pre(fseq(1, 2))
        assert not fseq(1).pre(fseq(1, 2, 3))
        assert not fseq(1).pre(fseq(2, 3))
        assert EMPTY.pre(fseq(9))

    def test_prefixes_ascending(self):
        out = list(fseq(1, 2).prefixes())
        assert out == [EMPTY, fseq(1), fseq(1, 2)]

    def test_proper_prefixes(self):
        assert list(fseq(1, 2).proper_prefixes()) == [EMPTY, fseq(1)]

    def test_one_step_extensions(self):
        exts = list(fseq(1).one_step_extensions([8, 9]))
        assert exts == [fseq(1, 8), fseq(1, 9)]


class TestRepr:
    def test_empty_repr(self):
        assert repr(EMPTY) == "ε"

    def test_nonempty_repr(self):
        assert repr(fseq(1, 2)) == "⟨1 2⟩"
