"""Unit tests for repro.seq.builders, incl. the §2.3 sequences."""

import pytest

from repro.seq.builders import (
    block_b,
    block_b_reversed,
    block_c,
    concat,
    cycle,
    empty,
    from_blocks,
    from_iterable,
    iterate,
    misra_x,
    misra_y,
    misra_z,
    naturals,
    prepend,
    repeat,
    repeat_finite,
    single,
)
from repro.seq.finite import EMPTY, fseq


class TestSimpleBuilders:
    def test_empty(self):
        assert empty() == EMPTY

    def test_single(self):
        assert single(5) == fseq(5)

    def test_from_iterable(self):
        assert from_iterable(range(3)) == fseq(0, 1, 2)

    def test_repeat(self):
        assert repeat("T").take(3) == fseq("T", "T", "T")

    def test_repeat_finite(self):
        assert repeat_finite("T", 2) == fseq("T", "T")

    def test_naturals(self):
        assert naturals().take(3) == fseq(0, 1, 2)
        assert naturals(5).take(2) == fseq(5, 6)

    def test_iterate(self):
        assert iterate(lambda n: 2 * n, 1).take(4) == fseq(1, 2, 4, 8)

    def test_cycle(self):
        assert cycle([1, 2]).take(5) == fseq(1, 2, 1, 2, 1)

    def test_cycle_empty_rejected(self):
        with pytest.raises(ValueError):
            cycle([])


class TestConcat:
    def test_finite_finite(self):
        assert concat(fseq(1), fseq(2)).take(5) == fseq(1, 2)

    def test_finite_lazy(self):
        out = concat(fseq(0), naturals(10))
        assert out.take(3) == fseq(0, 10, 11)

    def test_infinite_left_hides_right(self):
        out = concat(repeat(0), fseq(9))
        assert out.take(4) == fseq(0, 0, 0, 0)

    def test_prepend(self):
        # the paper's "0; c"
        assert prepend(0, fseq(1, 2)).take(5) == fseq(0, 1, 2)

    def test_prepend_onto_infinite(self):
        assert prepend("T", repeat("T")).take(3) == \
            fseq("T", "T", "T")


class TestBlocks:
    def test_block_b(self):
        # B_i = 0 … 2^i − 1
        assert block_b(0) == fseq(0)
        assert block_b(2) == fseq(0, 1, 2, 3)

    def test_block_b_reversed(self):
        assert block_b_reversed(2) == fseq(3, 2, 1, 0)

    def test_block_b_negative_rejected(self):
        with pytest.raises(ValueError):
            block_b(-1)

    def test_block_c_base_cases(self):
        assert block_c(0) == fseq(-1)
        assert block_c(1) == fseq(0, -2)

    def test_block_c_recurrence(self):
        # C₂ replaces 0 by 0,1 and −2 by −4,−3
        assert block_c(2) == fseq(0, 1, -4, -3)

    def test_from_blocks(self):
        s = from_blocks(lambda i: fseq(i, i))
        assert s.take(5) == fseq(0, 0, 1, 1, 2)


class TestMisraSequences:
    """The three solution sequences of §2.3."""

    def test_x_prefix_matches_paper(self):
        # x = B₀ B₁ B₂ B₃ … = 0 | 0 1 | 0 1 2 3 | 0 … 7 | …
        want = [0, 0, 1, 0, 1, 2, 3, 0, 1, 2, 3, 4, 5, 6, 7]
        assert list(misra_x().take(15)) == want

    def test_y_prefix_matches_paper(self):
        want = [0, 1, 0, 3, 2, 1, 0]
        assert list(misra_y().take(7)) == want

    def test_z_prefix(self):
        # z = C₀ C₁ C₂ … = −1 | 0 −2 | 0 1 −4 −3 | …
        want = [-1, 0, -2, 0, 1, -4, -3]
        assert list(misra_z().take(7)) == want

    def test_even_odd_recurrences_of_b_blocks(self):
        # even(B_{i+1}) = 2 × B_i and odd(B_{i+1}) = 2 × B_i + 1 (§2.3)
        from repro.seq.combinators import seq_filter, seq_map

        for i in range(4):
            b_next = block_b(i + 1)
            evens = seq_filter(lambda n: n % 2 == 0, b_next)
            odds = seq_filter(lambda n: n % 2 == 1, b_next)
            doubled = seq_map(lambda n: 2 * n, block_b(i))
            doubled1 = seq_map(lambda n: 2 * n + 1, block_b(i))
            assert evens == doubled
            assert odds == doubled1
