"""Unit tests for repro.seq.combinators (monotone sequence operations)."""

import itertools

import pytest

from repro.seq.combinators import (
    count_occurrences,
    interleavings,
    is_subsequence,
    pointwise,
    seq_filter,
    seq_map,
    subsequence_positions,
    take_while,
)
from repro.seq.finite import EMPTY, fseq
from repro.seq.lazy import LazySeq, NonProductiveError


def lazy(*items):
    return LazySeq(iter(items))


class TestSeqMap:
    def test_finite(self):
        assert seq_map(lambda n: n + 1, fseq(1, 2)) == fseq(2, 3)

    def test_lazy(self):
        out = seq_map(lambda n: n * 2, LazySeq(itertools.count()))
        assert out.take(3) == fseq(0, 2, 4)

    def test_lazy_finite_source_terminates(self):
        out = seq_map(lambda n: n, lazy(1, 2))
        assert out.to_finite(10) == fseq(1, 2)

    def test_monotone_prefix_stability(self):
        full = seq_map(lambda n: -n, fseq(1, 2, 3))
        part = seq_map(lambda n: -n, fseq(1, 2))
        assert part.is_prefix_of(full)


class TestSeqFilter:
    def test_finite(self):
        assert seq_filter(lambda n: n % 2 == 0,
                          fseq(1, 2, 3, 4)) == fseq(2, 4)

    def test_lazy(self):
        out = seq_filter(lambda n: n % 3 == 0,
                         LazySeq(itertools.count()))
        assert out.take(3) == fseq(0, 3, 6)

    def test_nonproductive_guarded(self):
        out = seq_filter(lambda n: False, LazySeq(itertools.count()),
                         scan_limit=100)
        with pytest.raises(NonProductiveError):
            out.take(1)

    def test_prefix_stability(self):
        pred = lambda n: n > 0
        full = seq_filter(pred, fseq(-1, 1, -2, 2))
        part = seq_filter(pred, fseq(-1, 1))
        assert part.is_prefix_of(full)


class TestPointwise:
    def test_min_length_rule(self):
        out = pointwise(lambda a, b: a + b, fseq(1, 2, 3), fseq(10, 20))
        assert out == fseq(11, 22)

    def test_empty_when_any_empty(self):
        assert pointwise(lambda a, b: a, fseq(1), EMPTY) == EMPTY

    def test_lazy_inputs(self):
        out = pointwise(lambda a, b: a * b,
                        LazySeq(itertools.count(1)), fseq(2, 3))
        assert out.to_finite(10) == fseq(2, 6)

    def test_unary(self):
        assert pointwise(lambda a: a + 1, fseq(1)) == fseq(2)


class TestTakeWhile:
    def test_basic(self):
        out = take_while(lambda x: x != "F", fseq("T", "T", "F", "T"))
        assert out == fseq("T", "T")

    def test_all_pass(self):
        assert take_while(lambda x: True, fseq(1, 2)) == fseq(1, 2)

    def test_lazy_stops_at_failure(self):
        src = LazySeq(itertools.cycle(["T", "F"]))
        out = take_while(lambda x: x != "F", src)
        assert out.to_finite(10) == fseq("T")

    def test_monotone_freeze_after_failure(self):
        # output on a prefix is a prefix of output on any extension
        f = lambda s: take_while(lambda x: x != "F", s)
        assert f(fseq("T", "F")).is_prefix_of(f(fseq("T", "F", "T")))


class TestSubsequencePositions:
    def test_oracle_routing(self):
        # §4.6: keep elements where oracle says T
        out = subsequence_positions(
            fseq(10, 20, 30), fseq("T", "F", "T"), "T"
        )
        assert out == fseq(10, 30)

    def test_waits_for_oracle(self):
        # an element without its oracle bit is not yet routed
        out = subsequence_positions(fseq(10, 20), fseq("T"), "T")
        assert out == fseq(10)

    def test_waits_for_input(self):
        out = subsequence_positions(fseq(10), fseq("T", "T", "T"), "T")
        assert out == fseq(10)


class TestStructuralHelpers:
    def test_is_subsequence(self):
        assert is_subsequence(fseq(1, 3), fseq(1, 2, 3))
        assert not is_subsequence(fseq(3, 1), fseq(1, 2, 3))
        assert is_subsequence(EMPTY, EMPTY)

    def test_interleavings_count(self):
        merges = list(interleavings(fseq(1, 2), fseq(3, 4)))
        assert len(merges) == 6  # C(4,2)
        assert fseq(1, 2, 3, 4) in merges
        assert fseq(3, 1, 4, 2) in merges

    def test_interleavings_preserve_order(self):
        for merged in interleavings(fseq(1, 2), fseq(8, 9)):
            left = [x for x in merged if x in (1, 2)]
            right = [x for x in merged if x in (8, 9)]
            assert left == [1, 2]
            assert right == [8, 9]

    def test_count_occurrences(self):
        assert count_occurrences(fseq(1, 2, 1), 1) == 2
        assert count_occurrences(EMPTY, 1) == 0
