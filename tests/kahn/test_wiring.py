"""Unit tests for repro.kahn.wiring (OperationalNetwork)."""

import pytest

from repro.channels.channel import Channel
from repro.core.description import Description, DescriptionSystem
from repro.functions.base import chan
from repro.functions.seq_fns import even_of, odd_of
from repro.kahn.agents import dfm_agent, source_agent
from repro.kahn.effects import RecvAny, Send
from repro.kahn.wiring import OperationalNetwork

B = Channel("b", alphabet={0, 2})
C = Channel("c", alphabet={1, 3})
D = Channel("d", alphabet={0, 1, 2, 3})


def dfm_system():
    return DescriptionSystem(
        [
            Description(even_of(chan(D)), chan(B)),
            Description(odd_of(chan(D)), chan(C)),
        ],
        channels=[B, C, D], name="dfm",
    )


def good_network() -> OperationalNetwork:
    return OperationalNetwork(
        name="dfm",
        channels=[B, C, D],
        system=dfm_system(),
        agents={
            "env-b": lambda: source_agent(B, [0, 2]),
            "env-c": lambda: source_agent(C, [1]),
            "dfm": lambda: dfm_agent(B, C, D),
        },
    )


class TestConstruction:
    def test_channel_coverage_enforced(self):
        with pytest.raises(ValueError):
            OperationalNetwork(
                name="bad", channels=[B], system=dfm_system(),
            )

    def test_make_agents_fresh_each_time(self):
        net = good_network()
        first = net.make_agents()
        second = net.make_agents()
        assert first.keys() == second.keys()
        assert first["dfm"] is not second["dfm"]


class TestRunning:
    def test_run(self):
        result = good_network().run(seed=3, max_steps=100)
        assert result.quiescent

    def test_sample_buckets(self):
        sample = good_network().sample(seeds=range(6), max_steps=100)
        assert sample.runs == 6
        assert sample.quiescent

    def test_validate_agrees(self):
        report = good_network().validate(seeds=range(10),
                                         max_steps=100)
        assert report.all_agree

    def test_assert_valid_passes(self):
        good_network().assert_valid(seeds=range(5), max_steps=100)


class TestValidationCatchesBugs:
    def test_broken_machine_flagged(self):
        def broken_dfm():
            # emits a constant before any input: causality violation
            yield Send(D, 0)
            while True:
                _, message = yield RecvAny((B, C))
                yield Send(D, message)

        net = OperationalNetwork(
            name="broken",
            channels=[B, C, D],
            system=dfm_system(),
            agents={
                "env-b": lambda: source_agent(B, [0]),
                "dfm": lambda: broken_dfm(),
            },
        )
        report = net.validate(seeds=range(5), max_steps=60)
        assert not report.all_agree
        with pytest.raises(AssertionError):
            net.assert_valid(seeds=range(5), max_steps=60)
