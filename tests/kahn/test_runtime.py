"""Unit tests for repro.kahn.runtime (the operational simulator)."""

import pytest

from repro.channels.channel import Channel
from repro.kahn.effects import Choose, Halt, Poll, Recv, RecvAny, Send
from repro.kahn.runtime import AgentState, Oracle, Runtime
from repro.kahn.scheduler import FirstOracle

B = Channel("b", alphabet={0, 1, 2})
C = Channel("c", alphabet={0, 1, 2})


def run(agents, channels=(B, C), max_steps=200, oracle=None):
    runtime = Runtime(agents, channels)
    result = runtime.run(oracle or FirstOracle(), max_steps)
    return runtime, result


class TestSendRecv:
    def test_send_recorded_in_trace(self):
        def sender():
            yield Send(B, 1)
            yield Send(B, 2)

        _, result = run({"s": sender()})
        assert [e.message for e in result.trace] == [1, 2]
        assert result.quiescent

    def test_recv_blocks_until_data(self):
        def consumer():
            message = yield Recv(B)
            yield Send(C, message)

        runtime, result = run({"c": consumer()})
        assert result.quiescent
        assert result.trace.length() == 0
        assert result.blocked_agents == ["c"]

    def test_pipeline(self):
        def producer():
            yield Send(B, 1)

        def copier():
            while True:
                message = yield Recv(B)
                yield Send(C, message)

        _, result = run({"p": producer(), "c": copier()})
        assert result.quiescent
        assert result.trace.messages_on(C).items == (1,)

    def test_fifo_order(self):
        def producer():
            yield Send(B, 0)
            yield Send(B, 1)
            yield Send(B, 2)

        received = []

        def consumer():
            for _ in range(3):
                message = yield Recv(B)
                received.append(message)

        _, result = run({"p": producer(), "c": consumer()})
        assert received == [0, 1, 2]

    def test_alphabet_enforced(self):
        def bad():
            yield Send(B, 99)

        with pytest.raises(ValueError):
            run({"bad": bad()})

    def test_unknown_channel_rejected(self):
        x = Channel("x")

        def bad():
            yield Send(x, 0)

        with pytest.raises(KeyError):
            run({"bad": bad()})


class TestChooseAndPoll:
    def test_choose_consults_oracle(self):
        picks = []

        def chooser():
            which = yield Choose(3)
            picks.append(which)

        class Always2(Oracle):
            def pick_choice(self, agent, arity):
                return 2

        run({"c": chooser()}, oracle=Always2())
        assert picks == [2]

    def test_poll(self):
        answers = []

        def poller():
            answers.append((yield Poll(B)))
            yield Send(B, 0)
            answers.append((yield Poll(B)))

        run({"p": poller()})
        assert answers == [False, True]


class TestRecvAny:
    def test_takes_whichever_available(self):
        def producer():
            yield Send(C, 2)

        got = []

        def merger():
            channel, message = yield RecvAny([B, C])
            got.append((channel.name, message))

        _, result = run({"p": producer(), "m": merger()})
        assert got == [("c", 2)]

    def test_blocks_when_all_empty(self):
        def merger():
            yield RecvAny([B, C])

        _, result = run({"m": merger()})
        assert result.quiescent
        assert result.blocked_agents == ["m"]

    def test_empty_channel_list_rejected(self):
        with pytest.raises(ValueError):
            RecvAny([])


class TestHaltAndQuiescence:
    def test_explicit_halt(self):
        def agent():
            yield Send(B, 0)
            yield Halt()
            yield Send(B, 1)  # unreachable

        _, result = run({"a": agent()})
        assert result.halted_agents == ["a"]
        assert result.trace.length() == 1

    def test_return_is_halt(self):
        def agent():
            yield Send(B, 0)

        _, result = run({"a": agent()})
        assert result.halted_agents == ["a"]

    def test_step_bound(self):
        def forever():
            while True:
                yield Send(B, 0)

        _, result = run({"f": forever()}, max_steps=10)
        assert not result.quiescent
        assert result.steps == 10

    def test_blocked_agent_wakes_on_data(self):
        def late_producer():
            yield Choose(1)  # burn a step
            yield Choose(1)
            yield Send(B, 1)

        def consumer():
            message = yield Recv(B)
            yield Send(C, message)

        _, result = run({"c": consumer(), "p": late_producer()})
        assert result.quiescent
        assert result.trace.messages_on(C).items == (1,)

    def test_is_quiescent_reflects_state(self):
        runtime = Runtime({}, [B])
        assert runtime.is_quiescent()
