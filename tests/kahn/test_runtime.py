"""Unit tests for repro.kahn.runtime (the operational simulator)."""

import pytest

from repro.channels.channel import Channel
from repro.kahn.effects import Choose, Halt, Poll, Recv, RecvAny, Send
from repro.kahn.runtime import AgentState, Oracle, Runtime
from repro.kahn.scheduler import FirstOracle, RandomOracle, RoundRobinOracle

B = Channel("b", alphabet={0, 1, 2})
C = Channel("c", alphabet={0, 1, 2})


def run(agents, channels=(B, C), max_steps=200, oracle=None):
    runtime = Runtime(agents, channels)
    result = runtime.run(oracle or FirstOracle(), max_steps)
    return runtime, result


class TestSendRecv:
    def test_send_recorded_in_trace(self):
        def sender():
            yield Send(B, 1)
            yield Send(B, 2)

        _, result = run({"s": sender()})
        assert [e.message for e in result.trace] == [1, 2]
        assert result.quiescent

    def test_recv_blocks_until_data(self):
        def consumer():
            message = yield Recv(B)
            yield Send(C, message)

        runtime, result = run({"c": consumer()})
        assert result.quiescent
        assert result.trace.length() == 0
        assert result.blocked_agents == ["c"]

    def test_pipeline(self):
        def producer():
            yield Send(B, 1)

        def copier():
            while True:
                message = yield Recv(B)
                yield Send(C, message)

        _, result = run({"p": producer(), "c": copier()})
        assert result.quiescent
        assert result.trace.messages_on(C).items == (1,)

    def test_fifo_order(self):
        def producer():
            yield Send(B, 0)
            yield Send(B, 1)
            yield Send(B, 2)

        received = []

        def consumer():
            for _ in range(3):
                message = yield Recv(B)
                received.append(message)

        _, result = run({"p": producer(), "c": consumer()})
        assert received == [0, 1, 2]

    def test_alphabet_enforced(self):
        def bad():
            yield Send(B, 99)

        with pytest.raises(ValueError):
            run({"bad": bad()})

    def test_unknown_channel_rejected(self):
        x = Channel("x")

        def bad():
            yield Send(x, 0)

        with pytest.raises(KeyError):
            run({"bad": bad()})


class TestChooseAndPoll:
    def test_choose_consults_oracle(self):
        picks = []

        def chooser():
            which = yield Choose(3)
            picks.append(which)

        class Always2(Oracle):
            def pick_choice(self, agent, arity):
                return 2

        run({"c": chooser()}, oracle=Always2())
        assert picks == [2]

    def test_poll(self):
        answers = []

        def poller():
            answers.append((yield Poll(B)))
            yield Send(B, 0)
            answers.append((yield Poll(B)))

        run({"p": poller()})
        assert answers == [False, True]


class TestOracleEdgeCases:
    def test_round_robin_does_not_starve_under_perpetual_readiness(self):
        # a spinner is ready at every step; round-robin must still let
        # the finite worker complete all of its sends
        def spinner():
            while True:
                yield Choose(1)

        def worker():
            for m in (0, 1, 2):
                yield Send(B, m)

        _, result = run({"spin": spinner(), "work": worker()},
                        max_steps=100, oracle=RoundRobinOracle())
        assert result.trace.messages_on(B).items == (0, 1, 2)
        assert "work" in result.halted_agents

    def test_recv_any_blocks_then_wakes_when_second_channel_fills(self):
        got = []

        def merger():
            channel, message = yield RecvAny([B, C])
            got.append((channel.name, message))

        def late_producer():
            yield Choose(1)  # let the merger block first
            yield Send(C, 2)

        # FirstOracle runs the merger first: it blocks on both empty
        # channels, then the producer fills C and the merger wakes
        _, result = run({"m": merger(), "p": late_producer()})
        assert got == [("c", 2)]
        assert result.quiescent
        assert result.blocked_agents == []

    def test_choose_arity_one_is_degenerate(self):
        picks = []

        def chooser():
            picks.append((yield Choose(1)))
            picks.append((yield Choose(1)))

        # whatever the oracle answers, arity 1 must collapse to 0
        run({"c": chooser()}, oracle=RandomOracle(42))
        assert picks == [0, 0]


class TestFailureCapture:
    def test_body_exception_fails_only_that_agent(self):
        def bomb():
            yield Send(B, 0)
            raise ValueError("kaput")

        def steady():
            yield Send(C, 1)
            yield Send(C, 2)

        _, result = run({"bomb": bomb(), "steady": steady()})
        assert result.failed_agents == ["bomb"]
        assert result.quiescent
        # the others' progress and the partial history are intact
        assert result.trace.messages_on(C).items == (1, 2)
        assert result.trace.messages_on(B).items == (0,)

    def test_failure_carries_traceback_and_step(self):
        def bomb():
            yield Send(B, 0)
            raise ValueError("kaput")

        _, result = run({"bomb": bomb()})
        failure = result.failures["bomb"]
        assert "kaput" in failure.traceback
        assert "ValueError" in failure.traceback
        assert failure.step >= 1
        assert "bomb" in str(failure)

    def test_failed_agent_is_skipped_by_scheduler(self):
        def bomb():
            raise ValueError("immediate")
            yield  # pragma: no cover - makes this a generator

        runtime = Runtime({"bomb": bomb()}, [B, C])
        assert runtime.step(FirstOracle())
        assert not runtime.step(FirstOracle())  # FAILED, not ready
        assert runtime.is_quiescent()


class TestDiagnostics:
    def test_undelivered_lists_residual_queue_contents(self):
        def producer():
            yield Send(B, 0)
            yield Send(B, 1)

        _, result = run({"p": producer()})
        assert result.undelivered == {"b": [0, 1]}

    def test_undelivered_empty_when_all_consumed(self):
        def producer():
            yield Send(B, 0)

        def consumer():
            yield Recv(B)

        _, result = run({"p": producer(), "c": consumer()})
        assert result.undelivered == {}

    def test_unknown_channel_error_names_wired_channels(self):
        x = Channel("x")

        def bad():
            yield Send(x, 0)

        with pytest.raises(KeyError) as info:
            run({"bad": bad()})
        message = str(info.value)
        assert "'x'" in message
        assert "b" in message and "c" in message  # the wired ones


class TestRecvAny:
    def test_takes_whichever_available(self):
        def producer():
            yield Send(C, 2)

        got = []

        def merger():
            channel, message = yield RecvAny([B, C])
            got.append((channel.name, message))

        _, result = run({"p": producer(), "m": merger()})
        assert got == [("c", 2)]

    def test_blocks_when_all_empty(self):
        def merger():
            yield RecvAny([B, C])

        _, result = run({"m": merger()})
        assert result.quiescent
        assert result.blocked_agents == ["m"]

    def test_empty_channel_list_rejected(self):
        with pytest.raises(ValueError):
            RecvAny([])


class TestHaltAndQuiescence:
    def test_explicit_halt(self):
        def agent():
            yield Send(B, 0)
            yield Halt()
            yield Send(B, 1)  # unreachable

        _, result = run({"a": agent()})
        assert result.halted_agents == ["a"]
        assert result.trace.length() == 1

    def test_return_is_halt(self):
        def agent():
            yield Send(B, 0)

        _, result = run({"a": agent()})
        assert result.halted_agents == ["a"]

    def test_step_bound(self):
        def forever():
            while True:
                yield Send(B, 0)

        _, result = run({"f": forever()}, max_steps=10)
        assert not result.quiescent
        assert result.steps == 10

    def test_blocked_agent_wakes_on_data(self):
        def late_producer():
            yield Choose(1)  # burn a step
            yield Choose(1)
            yield Send(B, 1)

        def consumer():
            message = yield Recv(B)
            yield Send(C, message)

        _, result = run({"c": consumer(), "p": late_producer()})
        assert result.quiescent
        assert result.trace.messages_on(C).items == (1,)

    def test_is_quiescent_reflects_state(self):
        runtime = Runtime({}, [B])
        assert runtime.is_quiescent()
