"""Failure injection: broken machines produce non-smooth traces.

The theory's diagnostic power: a description is a *specification*, and
the smooth-solution checker is an oracle for implementation bugs.  Each
test wires a deliberately broken agent into a network and shows that
the checker rejects the resulting quiescent traces — and names the kind
of violation (limit vs. smoothness) the paper's conditions predict.
"""

from repro.channels.channel import Channel
from repro.core.description import Description, combine
from repro.functions.base import chan
from repro.functions.seq_fns import even_of, odd_of
from repro.kahn.effects import Recv, RecvAny, Send
from repro.kahn.quiescence import collect_traces
from repro.kahn.agents import source_agent
from repro.processes.deterministic import copy_description

B = Channel("b", alphabet={0, 2, 4})
C = Channel("c", alphabet={1, 3, 5})
D = Channel("d", alphabet={0, 1, 2, 3, 4, 5})


def dfm_description():
    return combine([
        Description(even_of(chan(D)), chan(B)),
        Description(odd_of(chan(D)), chan(C)),
    ], name="dfm")


# -- broken merge implementations -------------------------------------------

def dropping_merge(b, c, d):
    """Forwards b, silently drops every c message (starvation bug)."""
    while True:
        channel, message = yield RecvAny((b, c))
        if channel == b:
            yield Send(d, message)


def duplicating_merge(b, c, d):
    """Forwards everything twice (duplication bug)."""
    while True:
        _, message = yield RecvAny((b, c))
        yield Send(d, message)
        yield Send(d, message)


def corrupting_merge(b, c, d):
    """Adds 2 to every even message (corruption bug)."""
    while True:
        channel, message = yield RecvAny((b, c))
        if message % 2 == 0:
            message = (message + 2) % 6
        yield Send(d, message)


def eager_merge(b, c, d):
    """Outputs a 0 before receiving anything (causality bug)."""
    yield Send(d, 0)
    while True:
        _, message = yield RecvAny((b, c))
        yield Send(d, message)


def network_with(merge_body):
    return lambda: {
        "env-b": source_agent(B, [0, 2]),
        "env-c": source_agent(C, [1]),
        "merge": merge_body(B, C, D),
    }


def quiescent_verdicts(make_agents, seeds=range(12), max_steps=80):
    desc = dfm_description()
    sample = collect_traces(make_agents, [B, C, D], seeds,
                            max_steps=max_steps)
    assert sample.quiescent, "network never quiesced"
    return [desc.check(t) for t in sample.quiescent]


class TestBrokenMerges:
    def test_dropping_merge_fails_limit(self):
        # dropped messages: quiescent but odd(d) ≠ c — a limit failure
        for verdict in quiescent_verdicts(network_with(dropping_merge)):
            assert not verdict.is_smooth
            assert not verdict.limit.holds

    def test_duplicating_merge_rejected(self):
        for verdict in quiescent_verdicts(
                network_with(duplicating_merge)):
            assert not verdict.is_smooth

    def test_duplication_caught_as_causality_violation(self):
        # the second copy of a message is an output with no remaining
        # justification: a smoothness violation, not just a limit one
        verdicts = quiescent_verdicts(network_with(duplicating_merge))
        assert any(v.violations for v in verdicts)

    def test_corrupting_merge_rejected(self):
        for verdict in quiescent_verdicts(
                network_with(corrupting_merge)):
            assert not verdict.is_smooth

    def test_eager_merge_is_a_smoothness_violation(self):
        # the spontaneous 0 output is exactly the paper's "no output
        # can be caused by itself": u = ε, v = ⟨(d,0)⟩ fails
        verdicts = quiescent_verdicts(network_with(eager_merge))
        for verdict in verdicts:
            assert not verdict.is_smooth
        spontaneous = [
            v.first_violation for v in verdicts if v.violations
        ]
        assert spontaneous
        assert any(viol.u.length() == 0 for viol in spontaneous)


class TestBrokenCopy:
    def test_lossy_copy_fails_limit(self):
        bc = Channel("bc", alphabet={0, 1})
        cc = Channel("cc", alphabet={0, 1})
        desc = copy_description(bc, cc)

        def lossy_copy():
            while True:
                yield Recv(bc)          # drop
                message = yield Recv(bc)
                yield Send(cc, message)

        sample = collect_traces(
            lambda: {"env": source_agent(bc, [0, 1]),
                     "copy": lossy_copy()},
            [bc, cc], seeds=range(5), max_steps=50,
        )
        for t in sample.quiescent:
            assert not desc.is_smooth_solution(t)

    def test_correct_copy_passes(self):
        bc = Channel("bc", alphabet={0, 1})
        cc = Channel("cc", alphabet={0, 1})
        desc = copy_description(bc, cc)

        def copy():
            while True:
                message = yield Recv(bc)
                yield Send(cc, message)

        sample = collect_traces(
            lambda: {"env": source_agent(bc, [0, 1]),
                     "copy": copy()},
            [bc, cc], seeds=range(5), max_steps=50,
        )
        assert sample.quiescent
        for t in sample.quiescent:
            assert desc.is_smooth_solution(t)
