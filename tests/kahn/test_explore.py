"""Exhaustive schedule exploration: the central claim as an equality.

With every schedule enumerated, "smooth solutions ⇔ computations"
stops being a sampled statement: on finite networks the set of
quiescent traces *equals* the set of finite smooth solutions.
"""

import pytest

from repro.channels.channel import Channel
from repro.core.description import Description, combine
from repro.core.solver import solve
from repro.functions.base import chan
from repro.functions.seq_fns import even_of, odd_of
from repro.kahn.agents import (
    brock_a_agent,
    brock_b_agent,
    copy_agent,
    dfm_agent,
    source_agent,
)
from repro.kahn.explore import (
    exhaustive_quiescent_traces,
    explore_schedules,
)
from repro.seq.finite import fseq
from repro.traces.trace import Trace

B = Channel("b", alphabet={0, 2})
C = Channel("c", alphabet={1, 3})
D = Channel("d", alphabet={0, 1, 2, 3})


def dfm_description():
    return combine([
        Description(even_of(chan(D)), chan(B)),
        Description(odd_of(chan(D)), chan(C)),
    ], name="dfm")


def dfm_network():
    return {
        "env-b": source_agent(B, [0, 2]),
        "env-c": source_agent(C, [1]),
        "dfm": dfm_agent(B, C, D),
    }


class TestExplorerMechanics:
    def test_deterministic_network_has_one_schedule_class(self):
        # one agent, no choices: a single trace
        bc = Channel("bc", alphabet={0, 1})
        traces = exhaustive_quiescent_traces(
            lambda: {"src": source_agent(bc, [0, 1])}, [bc],
            max_steps=10,
        )
        assert traces == {Trace.from_pairs([(bc, 0), (bc, 1)])}

    def test_truncation_reported(self):
        def forever():
            from repro.kahn.effects import Send

            while True:
                yield Send(B, 0)

        result = explore_schedules(lambda: {"f": forever()}, [B],
                                   max_steps=5)
        assert not result.quiescent_traces
        assert result.truncated_traces
        assert result.complete

    def test_max_runs_valve(self):
        result = explore_schedules(dfm_network, [B, C, D],
                                   max_steps=60, max_runs=3)
        assert not result.complete
        with pytest.raises(RuntimeError):
            exhaustive_quiescent_traces(dfm_network, [B, C, D],
                                        max_steps=60, max_runs=3)

    def test_pipeline_interleavings_counted(self):
        # two independent sources: all interleavings of their sends
        x = Channel("x", alphabet={0})
        y = Channel("y", alphabet={1})
        traces = exhaustive_quiescent_traces(
            lambda: {"sx": source_agent(x, [0, 0]),
                     "sy": source_agent(y, [1])},
            [x, y], max_steps=20,
        )
        # merge orders of xx and y: C(3,1) = 3
        assert len(traces) == 3


class TestCentralClaimAsEquality:
    def test_dfm_exhaustive_equals_denotational(self):
        """quiescent traces = finite smooth solutions (fixed inputs)."""
        operational = exhaustive_quiescent_traces(
            dfm_network, [B, C, D], max_steps=60,
        )
        denotational = {
            t for t in solve(dfm_description(), [B, C, D],
                             max_depth=6).finite_solutions
            if t.messages_on(B) == fseq(0, 2)
            and t.messages_on(C) == fseq(1)
        }
        assert operational == denotational
        assert len(operational) == 30

    def test_brock_ackermann_exhaustive(self):
        """§2.4, proved by enumeration (within the step bound): every
        computation of the Figure-4 network outputs ⟨0 2 1⟩."""
        b = Channel("b", alphabet={1, 3})
        c = Channel("c", alphabet={0, 1, 2, 3})
        traces = exhaustive_quiescent_traces(
            lambda: {"A": brock_a_agent(b, c),
                     "B": brock_b_agent(c, b)},
            [b, c], max_steps=60,
        )
        outputs = {tuple(t.messages_on(c)) for t in traces}
        assert outputs == {(0, 2, 1)}

    def test_copy_loop_exhaustive_silence(self):
        """§2.1: the two-copy loop has exactly one computation — ε."""
        x = Channel("x", alphabet={0})
        y = Channel("y", alphabet={0})
        traces = exhaustive_quiescent_traces(
            lambda: {"p1": copy_agent(x, y), "p2": copy_agent(y, x)},
            [x, y], max_steps=20,
        )
        assert traces == {Trace.empty()}

    def test_fork_exhaustive_splittings(self):
        """§4.6 operationally complete: with two inputs, the fork's
        computations realize exactly the 4 splittings."""
        from repro.kahn.agents import fork_agent

        c = Channel("c", alphabet={0, 1})
        d = Channel("d", alphabet={0, 1})
        e = Channel("e", alphabet={0, 1})
        traces = exhaustive_quiescent_traces(
            lambda: {"src": source_agent(c, [0, 1]),
                     "fork": fork_agent(c, d, e)},
            [c, d, e], max_steps=30,
        )
        splittings = {
            (tuple(t.messages_on(d)), tuple(t.messages_on(e)))
            for t in traces
        }
        assert splittings == {
            ((0, 1), ()), ((0,), (1,)), ((1,), (0,)), ((), (0, 1)),
        }

    @pytest.mark.parametrize("evens,odds", [
        ([], []),
        ([0], []),
        ([0], [1]),
        ([0, 2], [1]),
    ])
    def test_exhaustive_equals_denotational_across_inputs(
            self, evens, odds):
        """The set equality holds for every input configuration."""
        def network():
            return {
                "env-b": source_agent(B, evens),
                "env-c": source_agent(C, odds),
                "dfm": dfm_agent(B, C, D),
            }

        operational = exhaustive_quiescent_traces(
            network, [B, C, D], max_steps=60,
        )
        depth = 2 * (len(evens) + len(odds))
        denotational = {
            t for t in solve(dfm_description(), [B, C, D],
                             max_depth=depth).finite_solutions
            if list(t.messages_on(B)) == evens
            and list(t.messages_on(C)) == odds
        }
        assert operational == denotational
