"""Operational agents (§2/§4 machines) and the computations ⇔ smooth
solutions cross-validation."""

from repro.channels.channel import Channel
from repro.core.description import Description, DescriptionSystem, combine
from repro.functions.base import chan
from repro.functions.seq_fns import even_of, odd_of
from repro.kahn.agents import (
    brock_a_agent,
    brock_b_agent,
    copy_agent,
    dfm_agent,
    fair_random_agent,
    finite_ticks_agent,
    fork_agent,
    implication_agent,
    merge_agent,
    prepend0_agent,
    random_bit_agent,
    random_number_agent,
    source_agent,
    ticks_agent,
)
from repro.kahn.quiescence import collect_traces, describe_run, quiescent_traces
from repro.kahn.scheduler import (
    RandomOracle,
    RoundRobinOracle,
    ScriptedOracle,
    run_network,
)
from repro.kahn.validate import (
    check_denotational_completeness,
    check_operational_soundness,
)
from repro.processes.deterministic import copy_description
from repro.traces.trace import Trace

B = Channel("b", alphabet={0, 2, 4})
C = Channel("c", alphabet={1, 3, 5})
D = Channel("d", alphabet={0, 1, 2, 3, 4, 5})


def dfm_description():
    return combine([
        Description(even_of(chan(D)), chan(B)),
        Description(odd_of(chan(D)), chan(C)),
    ], name="dfm")


def dfm_network():
    return {
        "envb": source_agent(B, [0, 2]),
        "envc": source_agent(C, [1]),
        "dfm": dfm_agent(B, C, D),
    }


class TestAgents:
    def test_ticks_bounded(self):
        t = Channel("t", alphabet={"T"})
        result = run_network({"ticks": ticks_agent(t, limit=5)}, [t],
                             RandomOracle(0), max_steps=100)
        assert result.trace.count_on(t) == 5

    def test_copy_agent(self):
        result = run_network(
            {"src": source_agent(B, [0, 2]), "cp": copy_agent(B, D)},
            [B, D], RandomOracle(1), max_steps=100,
        )
        assert result.quiescent
        assert result.trace.messages_on(D).items == (0, 2)

    def test_prepend0_agent(self):
        result = run_network(
            {"p": prepend0_agent(C, B)}, [B, C],
            RandomOracle(0), max_steps=10,
        )
        assert result.trace.messages_on(B).items == (0,)

    def test_random_bit_both_outcomes_reachable(self):
        bit = Channel("bit", alphabet={"T", "F"})
        seen = set()
        for seed in range(16):
            result = run_network({"rb": random_bit_agent(bit)}, [bit],
                                 RandomOracle(seed), max_steps=10)
            seen.add(result.trace.item(0).message)
        assert seen == {"T", "F"}

    def test_random_number_distribution_has_spread(self):
        d = Channel("d")
        values = set()
        for seed in range(40):
            result = run_network({"rn": random_number_agent(d)}, [d],
                                 RandomOracle(seed), max_steps=200)
            assert result.quiescent
            values.add(result.trace.item(0).message)
        assert len(values) >= 3  # genuinely unbounded choice

    def test_finite_ticks_varies(self):
        d = Channel("d", alphabet={"T"})
        counts = {
            run_network({"ft": finite_ticks_agent(d)}, [d],
                        RandomOracle(seed), max_steps=300
                        ).trace.count_on(d)
            for seed in range(30)
        }
        assert len(counts) >= 3

    def test_fair_random_agent_is_fair_in_prefix(self):
        c = Channel("c", alphabet={"T", "F"})
        result = run_network(
            {"fr": fair_random_agent(c, rounds=10)}, [c],
            RandomOracle(3), max_steps=500,
        )
        bits = result.trace.messages_on(c)
        assert "T" in bits.items and "F" in bits.items

    def test_fork_agent_routes_everything(self):
        c = Channel("c", alphabet={0, 1, 2})
        d = Channel("d", alphabet={0, 1, 2})
        e = Channel("e", alphabet={0, 1, 2})
        result = run_network(
            {"src": source_agent(c, [0, 1, 2]),
             "fork": fork_agent(c, d, e)},
            [c, d, e], RandomOracle(7), max_steps=100,
        )
        assert result.quiescent
        routed = (list(result.trace.messages_on(d))
                  + list(result.trace.messages_on(e)))
        assert sorted(routed) == [0, 1, 2]

    def test_implication_agent(self):
        c = Channel("c", alphabet={"T", "F"})
        d = Channel("d", alphabet={"T", "F"})
        result = run_network(
            {"env": source_agent(c, ["F"]),
             "imp": implication_agent(c, d)},
            [c, d], RandomOracle(0), max_steps=20,
        )
        assert result.trace.messages_on(d).items == ("F",)

    def test_merge_agent_fair_merge(self):
        e = Channel("e", alphabet={0, 1, 2, 3, 4, 5})
        result = run_network(
            {"sb": source_agent(B, [0, 2]),
             "sc": source_agent(C, [1]),
             "m": merge_agent((B, C), e)},
            [B, C, e], RandomOracle(5), max_steps=100,
        )
        assert result.quiescent
        assert sorted(result.trace.messages_on(e)) == [0, 1, 2]


class TestOracles:
    def test_scripted_oracle_steers(self):
        # force dfm to emit 1 before 0 by scheduling envc first
        traces = set()
        for agent_picks in ([0, 0, 0, 0], [2, 2, 2, 2],
                            [1, 1, 1, 1]):
            result = run_network(
                dfm_network(), [B, C, D],
                ScriptedOracle(agent_picks=agent_picks),
                max_steps=100,
            )
            if result.quiescent:
                traces.add(tuple(result.trace.messages_on(D)))
        assert len(traces) >= 2

    def test_round_robin_reaches_quiescence(self):
        result = run_network(dfm_network(), [B, C, D],
                             RoundRobinOracle(), max_steps=200)
        assert result.quiescent

    def test_describe_run(self):
        result = run_network(dfm_network(), [B, C, D],
                             RandomOracle(0), max_steps=200)
        text = describe_run(result)
        assert "quiescent" in text


class TestCrossValidation:
    def test_dfm_operational_soundness(self):
        report = check_operational_soundness(
            dfm_network, [B, C, D], dfm_description(),
            seeds=range(25), max_steps=60,
        )
        assert report.all_agree, report.failures
        assert report.quiescent_checked > 0

    def test_dfm_denotational_completeness(self):
        # every merge order of the inputs ⟨0 2⟩ and ⟨1⟩ is realized by
        # some oracle — the operational side of "every smooth solution
        # corresponds to a computation"
        sample = collect_traces(dfm_network, [B, C, D],
                                seeds=range(60), max_steps=80)
        outputs = {
            tuple(t.messages_on(D))
            for t in sample.distinct_quiescent()
        }
        # all three interleavings of ⟨0 2⟩ and ⟨1⟩ occur
        assert outputs == {(0, 2, 1), (0, 1, 2), (1, 0, 2)}

    def test_prefix_histories_satisfy_smoothness(self):
        report = check_operational_soundness(
            dfm_network, [B, C, D], dfm_description(),
            seeds=range(10), max_steps=3,  # cut runs short
        )
        assert report.all_agree
        assert report.prefixes_checked > 0

    def test_completeness_checker_flags_missing(self):
        ghost = Trace.from_pairs([(B, 4), (D, 4)])
        report = check_denotational_completeness(
            dfm_network, [B, C, D], [ghost], seeds=range(5),
            max_steps=60,
        )
        assert not report.all_agree


class TestBrockAgents:
    def test_only_021_reachable(self):
        b = Channel("b", alphabet={1, 3})
        c = Channel("c", alphabet={0, 1, 2, 3})
        outputs = set()
        for seed in range(30):
            result = run_network(
                {"A": brock_a_agent(b, c), "B": brock_b_agent(c, b)},
                [b, c], RandomOracle(seed), max_steps=100,
            )
            assert result.quiescent
            outputs.add(tuple(result.trace.messages_on(c)))
        assert outputs == {(0, 2, 1)}
