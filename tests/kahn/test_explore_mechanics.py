"""Unit tests for the replay machinery inside repro.kahn.explore."""

from repro.channels.channel import Channel
from repro.kahn.effects import Choose, Send
from repro.kahn.explore import (
    _ReplayOracle,
    _next_script,
    explore_schedules,
)

X = Channel("x", alphabet={0, 1, 2})


class TestNextScript:
    def test_empty_log_ends(self):
        assert _next_script([]) is None

    def test_single_binary_decision(self):
        assert _next_script([(2, 0)]) == [1]
        assert _next_script([(2, 1)]) is None

    def test_carries_like_odometer(self):
        # last decision saturated: increment the previous one
        assert _next_script([(3, 0), (2, 1)]) == [1]

    def test_suffix_dropped(self):
        # decisions after the incremented one are discarded
        assert _next_script([(2, 0), (5, 4), (2, 1)]) == [1]

    def test_arity_one_never_increments(self):
        assert _next_script([(1, 0), (1, 0)]) is None


class TestReplayOracle:
    def test_follows_script_then_zero(self):
        oracle = _ReplayOracle([1, 2])
        assert oracle._decide(3) == 1
        assert oracle._decide(3) == 2
        assert oracle._decide(3) == 0  # script exhausted

    def test_log_records_arity_and_choice(self):
        oracle = _ReplayOracle([1])
        oracle._decide(2)
        oracle._decide(4)
        assert oracle.log == [(2, 1), (4, 0)]

    def test_choice_wraps_modulo_arity(self):
        oracle = _ReplayOracle([5])
        assert oracle._decide(2) == 1


class TestDecisionTreeShape:
    def test_run_count_matches_choice_tree(self):
        # a single agent making two binary choices: 4 leaves
        def chooser():
            a = yield Choose(2)
            b = yield Choose(2)
            yield Send(X, a + b)

        result = explore_schedules(lambda: {"c": chooser()}, [X],
                                   max_steps=10)
        assert result.runs == 4
        assert result.complete
        # outputs: 0, 1, 1, 2 → three distinct traces
        assert len(result.quiescent_traces) == 3

    def test_scheduling_choices_counted(self):
        # two independent one-send agents: 2 interleavings
        def send(m):
            def body():
                yield Send(X, m)

            return body

        result = explore_schedules(
            lambda: {"a": send(0)(), "b": send(1)()}, [X],
            max_steps=10,
        )
        assert result.complete
        assert len(result.quiescent_traces) == 2
