"""The Brock–Ackermann anomaly (§2.4) — the paper's headline negative
example, reproduced end to end."""

from repro.anomaly.brock_ackermann import (
    SOLUTION_ANOMALOUS,
    SOLUTION_REAL,
    analyse,
    candidate_sequences,
    channels,
    combined_description,
    eliminated_system,
    full_system,
    operational_outputs,
    solves_equations,
    trace_of_output,
)
from repro.seq.finite import fseq


class TestEquations:
    def test_exactly_two_solutions(self):
        b, c = channels()
        system = eliminated_system(b, c)
        solutions = [
            s for s in candidate_sequences()
            if solves_equations(c, s, system)
        ]
        assert solutions == [SOLUTION_ANOMALOUS, SOLUTION_REAL]

    def test_solution_values(self):
        assert SOLUTION_ANOMALOUS == fseq(0, 1, 2)
        assert SOLUTION_REAL == fseq(0, 2, 1)

    def test_elimination_matches_paper(self):
        # the eliminated system is even(c) ⟵ ⟨0 2⟩, odd(c) ⟵ f(c)
        b, c = channels()
        system = eliminated_system(b, c)
        assert len(system) == 2
        assert b not in system.channels


class TestSmoothness:
    def test_anomalous_solution_rejected(self):
        b, c = channels()
        desc = combined_description(b, c)
        verdict = desc.check(trace_of_output(c, SOLUTION_ANOMALOUS))
        assert verdict.is_solution        # satisfies the equations…
        assert not verdict.is_smooth      # …but is not smooth

    def test_rejection_witness_matches_paper(self):
        """The paper: ⟨0 1 2⟩ is not smooth because
        ¬(odd(⟨0 1⟩) ⊑ f(⟨0⟩))."""
        b, c = channels()
        desc = combined_description(b, c)
        violation = desc.check(
            trace_of_output(c, SOLUTION_ANOMALOUS)
        ).first_violation
        assert violation is not None
        assert violation.u == trace_of_output(c, fseq(0))
        assert violation.v == trace_of_output(c, fseq(0, 1))

    def test_real_solution_accepted(self):
        b, c = channels()
        desc = combined_description(b, c)
        verdict = desc.check(trace_of_output(c, SOLUTION_REAL))
        assert verdict.is_smooth and verdict.exact

    def test_full_system_agrees_on_interleaved_traces(self):
        # before elimination, with b-events interleaved: the real
        # computation's trace is smooth for the full three-description
        # system
        from repro.traces.trace import Trace

        b, c = channels()
        system = full_system(b, c)
        t = Trace.from_pairs([(c, 0), (c, 2), (b, 1), (c, 1)])
        assert system.is_smooth_solution(t)
        anomalous = Trace.from_pairs([(c, 0), (b, 1), (c, 1), (c, 2)])
        assert not system.is_smooth_solution(anomalous)


class TestOperational:
    def test_only_the_real_solution_is_computed(self):
        assert operational_outputs(n_seeds=40) == {SOLUTION_REAL}

    def test_full_analysis(self):
        analysis = analyse(n_seeds=30)
        assert analysis.anomalous_rejected
        assert analysis.resolved
        assert [tuple(s) for s in analysis.smooth_solutions] == \
            [(0, 2, 1)]
