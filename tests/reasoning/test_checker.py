"""Unit tests for repro.reasoning.checker — the §2.3 reasoning patterns."""

from repro.channels.channel import Channel
from repro.channels.event import Event
from repro.core.description import Description, combine
from repro.core.solver import SmoothSolutionSolver
from repro.functions.base import chan
from repro.functions.seq_fns import (
    affine_of,
    even_of,
    odd_of,
    prepend_of,
    scale_of,
)
from repro.reasoning.checker import (
    check_progress,
    check_progress_on_quiescent,
    check_safety,
    check_safety_on_description,
)
from repro.reasoning.properties import (
    SafetyProperty,
    eventually_all,
    eventually_message,
    never_message,
    outputs_justified_by_inputs,
)
from repro.seq.builders import misra_x
from repro.traces.trace import Trace

B = Channel("b", alphabet={0, 2})
C = Channel("c", alphabet={1, 3})
D = Channel("d", alphabet={0, 1, 2, 3})


def dfm():
    return combine([
        Description(even_of(chan(D)), chan(B)),
        Description(odd_of(chan(D)), chan(C)),
    ], name="dfm")


class TestSafetyChecking:
    def test_dfm_outputs_justified(self):
        report = check_safety_on_description(
            dfm(), [B, C, D],
            outputs_justified_by_inputs([B, C], [D]),
            max_depth=4,
        )
        assert report.holds
        assert report.nodes_checked > 100
        assert "holds" in str(report)

    def test_violated_property_yields_counterexample(self):
        # "no input 2 ever" is false of reachable histories
        report = check_safety_on_description(
            dfm(), [B, C, D], never_message(B, 2), max_depth=2,
        )
        assert not report.holds
        assert report.counterexample is not None
        assert any(
            e.channel == B and e.message == 2
            for e in report.counterexample
        )
        assert "VIOLATED" in str(report)

    def test_counterexample_is_minimal_in_bfs_order(self):
        report = check_safety_on_description(
            dfm(), [B, C, D], never_message(B, 2), max_depth=3,
        )
        assert report.counterexample.length() == 1

    def test_solver_reuse(self):
        solver = SmoothSolutionSolver.over_channels(dfm(), [B, C, D])
        prop = SafetyProperty("true", lambda t: True)
        report = check_safety(solver, prop, max_depth=3)
        assert report.holds


class TestProgressChecking:
    def _x_trace(self):
        d = Channel("d")
        seq = misra_x()

        def gen():
            i = 0
            while True:
                yield Event(d, seq.item(i))
                i += 1

        return d, Trace.lazy(gen(), name="x")

    def test_fig3_progress(self):
        # §2.3: every natural number appears eventually — check 0..7
        # appear within a 2^4-ish horizon on the solution x
        d, t = self._x_trace()
        prop = eventually_all("0..7 appear", d, list(range(8)))
        report = check_progress(t, prop, horizon=40)
        assert report.holds
        assert report.satisfied_at <= 40

    def test_earliest_prefix_reported(self):
        d, t = self._x_trace()
        report = check_progress(t, eventually_message(d, 1),
                                horizon=10)
        # x = 0 0 1 … : the 1 appears at prefix length 3
        assert report.satisfied_at == 3

    def test_unreachable_goal(self):
        d, t = self._x_trace()
        report = check_progress(t, eventually_message(d, -5),
                                horizon=30)
        assert not report.holds
        assert "NOT reached" in str(report)

    def test_horizon_respects_finite_solutions(self):
        d = Channel("d", alphabet={0})
        t = Trace.from_pairs([(d, 0)])
        report = check_progress(t, eventually_message(d, 0),
                                horizon=50)
        assert report.holds

    def test_quiescent_progress(self):
        solutions = [
            Trace.from_pairs([(B, 0), (D, 0)]),
            Trace.from_pairs([(B, 2), (D, 2)]),
        ]
        reports = check_progress_on_quiescent(
            solutions, eventually_message(D, 0)
        )
        assert reports[0].holds
        assert not reports[1].holds
