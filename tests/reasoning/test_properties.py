"""Unit tests for repro.reasoning.properties."""

from repro.channels.channel import Channel
from repro.reasoning.properties import (
    always,
    counting_bound,
    eventually_all,
    eventually_count,
    eventually_message,
    never_message,
    outputs_justified_by_inputs,
    precedes,
)
from repro.traces.trace import Trace

B = Channel("b", alphabet={0, 2})
C = Channel("c", alphabet={1, 3})
D = Channel("d", alphabet={0, 1, 2, 3})


def t_of(*pairs):
    return Trace.from_pairs(pairs)


class TestAlways:
    def test_holds(self):
        prop = always("all small", lambda e: e.message < 4)
        assert prop(t_of((B, 0), (C, 1)))

    def test_fails(self):
        prop = always("no odd", lambda e: e.message % 2 == 0)
        assert not prop(t_of((B, 0), (C, 1)))

    def test_empty_trace_vacuous(self):
        prop = always("anything", lambda e: False)
        assert prop(Trace.empty())

    def test_prefix_closed(self):
        # safety: holds of t ⇒ holds of every prefix
        prop = always("no 3", lambda e: e.message != 3)
        t = t_of((B, 0), (C, 1), (D, 0))
        if prop(t):
            for p in t.prefixes():
                assert prop(p)

    def test_conjunction(self):
        p1 = always("p1", lambda e: e.message < 4)
        p2 = always("p2", lambda e: e.message >= 0)
        both = p1 & p2
        assert both(t_of((B, 0)))
        assert "∧" in both.name


class TestNeverMessage:
    def test_blocks_specific_event(self):
        prop = never_message(D, 3)
        assert prop(t_of((D, 0)))
        assert not prop(t_of((D, 3)))
        assert prop(t_of((C, 3)))  # other channel is fine


class TestPrecedes:
    def test_justified(self):
        prop = outputs_justified_by_inputs([B, C], [D])
        assert prop(t_of((B, 0), (D, 0)))
        assert not prop(t_of((D, 0)))

    def test_multiset_semantics(self):
        # two outputs need two inputs
        prop = outputs_justified_by_inputs([B, C], [D])
        assert not prop(t_of((B, 0), (D, 0), (D, 0)))

    def test_order_matters(self):
        prop = outputs_justified_by_inputs([B, C], [D])
        assert not prop(t_of((D, 0), (B, 0)))

    def test_custom_keying(self):
        # every (d, 2n) preceded by (d, n): §2.3's safety shape
        prop = precedes(
            "halves first",
            lambda e: e.message // 2
            if e.channel == D and e.message in (2,) else None,
            lambda half: (
                lambda e: e.channel == D and e.message == half
            ),
        )
        assert prop(t_of((D, 1), (D, 2)))
        assert not prop(t_of((D, 2), (D, 1)))


class TestCountingBound:
    def test_output_bounded_by_input(self):
        prop = counting_bound(
            "d ≤ inputs", D,
            lambda t: t.count_on(B) + t.count_on(C),
        )
        assert prop(t_of((B, 0), (D, 0)))
        assert not prop(t_of((D, 0)))


class TestProgress:
    def test_eventually_message(self):
        prop = eventually_message(D, 1)
        assert not prop(t_of((B, 0)))
        assert prop(t_of((B, 0), (D, 1)))

    def test_monotone_goal(self):
        prop = eventually_message(D, 1)
        t = t_of((D, 1), (B, 0))
        assert prop(t.take(1)) and prop(t)

    def test_eventually_all(self):
        prop = eventually_all("0 and 1 on d", D, [0, 1])
        assert not prop(t_of((D, 0)))
        assert prop(t_of((D, 0), (D, 1)))

    def test_eventually_count(self):
        prop = eventually_count(D, 2)
        assert not prop(t_of((D, 0)))
        assert prop(t_of((D, 0), (D, 1)))

    def test_conjunction(self):
        both = eventually_message(D, 0) & eventually_message(D, 1)
        assert not both(t_of((D, 0)))
        assert both(t_of((D, 0), (D, 1)))
