"""Smoke tests: every example script runs to completion.

Examples are deliverables; these tests keep them green as the library
evolves.  Each runs in a subprocess against the installed package.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    pathlib.Path(__file__).resolve().parent.parent.glob(
        "examples/*.py"
    )
)


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=lambda p: p.name
)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"


def test_examples_exist():
    assert len(EXAMPLES) >= 3, "at least three runnable examples"
