"""Unit tests for repro.channels.channel."""

import pytest

from repro.channels.channel import (
    Channel,
    channel_set,
    names,
    non_auxiliary,
)


class TestChannel:
    def test_identity_by_name(self):
        assert Channel("b") == Channel("b", alphabet={1})
        assert Channel("b") != Channel("c")

    def test_hash_by_name(self):
        assert len({Channel("b"), Channel("b", alphabet={0})}) == 1

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Channel("")

    def test_immutable(self):
        c = Channel("b")
        with pytest.raises(AttributeError):
            c.name = "x"

    def test_admits_with_alphabet(self):
        c = Channel("b", alphabet={0, 1})
        assert c.admits(0)
        assert not c.admits(7)

    def test_admits_unrestricted(self):
        assert Channel("b").admits(object())

    def test_ordering_by_name(self):
        assert Channel("a") < Channel("b")

    def test_auxiliary_flag(self):
        assert Channel("b", auxiliary=True).auxiliary
        assert not Channel("b").auxiliary

    def test_repr_marks_auxiliary(self):
        assert "aux" in repr(Channel("b", auxiliary=True))


class TestChannelSets:
    def test_channel_set(self):
        s = channel_set(Channel("a"), Channel("b"))
        assert Channel("a") in s

    def test_names_sorted(self):
        assert names({Channel("z"), Channel("a")}) == ("a", "z")

    def test_non_auxiliary(self):
        visible = Channel("v")
        hidden = Channel("h", auxiliary=True)
        assert non_auxiliary({visible, hidden}) == frozenset({visible})
