"""Unit tests for repro.channels.event."""

import pytest

from repro.channels.channel import Channel
from repro.channels.event import Event, ev


class TestEvent:
    def test_construction(self):
        b = Channel("b", alphabet={0, 1})
        e = Event(b, 1)
        assert e.channel == b
        assert e.message == 1

    def test_alphabet_enforced(self):
        b = Channel("b", alphabet={0})
        with pytest.raises(ValueError):
            Event(b, 7)

    def test_unrestricted_channel(self):
        Event(Channel("b"), "anything")  # no raise

    def test_equality_and_hash(self):
        b = Channel("b")
        assert Event(b, 1) == Event(b, 1)
        assert Event(b, 1) != Event(b, 2)
        assert len({Event(b, 1), Event(b, 1)}) == 1

    def test_unpacking(self):
        b = Channel("b")
        channel, message = Event(b, 5)
        assert channel == b
        assert message == 5

    def test_on(self):
        b, c = Channel("b"), Channel("c")
        assert Event(b, 1).on({b})
        assert not Event(b, 1).on({c})

    def test_immutable(self):
        e = ev(Channel("b"), 1)
        with pytest.raises(AttributeError):
            e.message = 2

    def test_repr(self):
        assert repr(ev(Channel("b"), 3)) == "(b,3)"
