"""Unit tests for repro.order.product (the §4 combination codomain)."""

import pytest

from repro.order.checks import check_cpo
from repro.order.flat import BOTTOM, TF
from repro.order.product import ProductCpo, pair_cpo
from repro.seq import SEQ_CPO, EMPTY, fseq


class TestProductStructure:
    def test_bottom(self):
        p = pair_cpo(SEQ_CPO, SEQ_CPO)
        assert p.bottom == (EMPTY, EMPTY)

    def test_leq_componentwise(self):
        p = pair_cpo(SEQ_CPO, SEQ_CPO)
        assert p.leq((EMPTY, fseq(1)), (fseq(2), fseq(1)))
        assert not p.leq((fseq(2), fseq(1)), (EMPTY, fseq(1)))

    def test_mixed_component_domains(self):
        p = pair_cpo(SEQ_CPO, TF)
        assert p.leq((EMPTY, BOTTOM), (fseq(1), "T"))
        assert not p.leq((EMPTY, "F"), (fseq(1), "T"))

    def test_rejects_wrong_arity(self):
        p = pair_cpo(SEQ_CPO, SEQ_CPO)
        with pytest.raises(ValueError):
            p.leq((EMPTY,), (EMPTY, EMPTY))

    def test_rejects_non_tuple(self):
        p = pair_cpo(SEQ_CPO, SEQ_CPO)
        with pytest.raises(ValueError):
            p.leq([EMPTY, EMPTY], (EMPTY, EMPTY))

    def test_empty_product_rejected(self):
        with pytest.raises(ValueError):
            ProductCpo([])

    def test_is_cpo(self):
        check_cpo(pair_cpo(SEQ_CPO, TF))


class TestProductOperations:
    def test_lub_chain(self):
        p = pair_cpo(SEQ_CPO, SEQ_CPO)
        chain = [(EMPTY, EMPTY), (fseq(1), EMPTY), (fseq(1), fseq(2))]
        assert p.lub_chain(chain) == (fseq(1), fseq(2))

    def test_lub_chain_empty(self):
        p = pair_cpo(SEQ_CPO, SEQ_CPO)
        assert p.lub_chain([]) == p.bottom

    def test_project(self):
        p = pair_cpo(SEQ_CPO, TF)
        assert p.project((fseq(1), "T"), 0) == fseq(1)
        assert p.project((fseq(1), "T"), 1) == "T"

    def test_eq_upto_componentwise(self):
        p = pair_cpo(SEQ_CPO, SEQ_CPO)
        assert p.eq_upto((fseq(1), fseq(2)), (fseq(1), fseq(2)), 4)
        assert not p.eq_upto((fseq(1), fseq(2)), (fseq(1), fseq(3)), 4)

    def test_leq_upto_componentwise(self):
        p = pair_cpo(SEQ_CPO, SEQ_CPO)
        assert p.leq_upto((EMPTY, fseq(2)), (fseq(1), fseq(2, 3)), 4)

    def test_arity_and_name(self):
        p = ProductCpo([SEQ_CPO, SEQ_CPO, TF])
        assert p.arity == 3
        assert "×" in p.name

    def test_sample_tuples(self):
        p = pair_cpo(TF, TF)
        sample = p.sample()
        assert all(isinstance(x, tuple) and len(x) == 2
                   for x in sample)
        assert (BOTTOM, BOTTOM) in sample
