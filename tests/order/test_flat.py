"""Unit tests for repro.order.flat (flat domains of §4.3/§4.5)."""

import pytest

from repro.order.checks import check_cpo
from repro.order.flat import (
    BOTTOM,
    T_ONLY,
    TF,
    FlatCpo,
    flat_integers,
    is_flat_bottom,
)


class TestBottomToken:
    def test_singleton(self):
        assert BOTTOM is type(BOTTOM)()

    def test_repr(self):
        assert repr(BOTTOM) == "⊥"

    def test_is_flat_bottom(self):
        assert is_flat_bottom(BOTTOM)
        assert not is_flat_bottom("T")


class TestTF:
    def test_bottom_below_values(self):
        assert TF.leq(BOTTOM, "T")
        assert TF.leq(BOTTOM, "F")

    def test_values_incomparable(self):
        assert not TF.leq("T", "F")
        assert not TF.leq("F", "T")

    def test_reflexive_on_values(self):
        assert TF.leq("T", "T")

    def test_value_not_below_bottom(self):
        assert not TF.leq("T", BOTTOM)

    def test_rejects_foreign_elements(self):
        with pytest.raises(ValueError):
            TF.leq("X", "T")

    def test_is_cpo(self):
        check_cpo(TF)

    def test_sample_contains_bottom_and_values(self):
        sample = TF.sample()
        assert BOTTOM in sample
        assert "T" in sample and "F" in sample


class TestTOnly:
    def test_structure(self):
        assert T_ONLY.leq(BOTTOM, "T")
        assert T_ONLY.contains("T")
        assert not T_ONLY.contains("F")

    def test_is_cpo(self):
        check_cpo(T_ONLY)


class TestUnrestrictedFlat:
    def test_any_value_allowed(self):
        flat = flat_integers()
        assert flat.leq(BOTTOM, 42)
        assert flat.leq(42, 42)
        assert not flat.leq(42, 43)

    def test_contains_everything(self):
        flat = FlatCpo(None)
        assert flat.contains(object())

    def test_lub_chain(self):
        flat = flat_integers()
        assert flat.lub_chain([BOTTOM, 5, 5]) == 5
