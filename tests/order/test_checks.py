"""Unit tests for repro.order.checks (law validators)."""

import pytest

from repro.order.checks import (
    LawViolation,
    check_antisymmetric,
    check_bottom,
    check_continuous_on_chain,
    check_cpo,
    check_monotone,
    check_partial_order,
    check_reflexive,
    check_transitive,
)
from repro.order.flat import TF
from repro.order.poset import PartialOrder
from repro.seq import SEQ_CPO, EMPTY, fseq


class BrokenReflexivity(PartialOrder):
    name = "broken-reflexive"

    def leq(self, x, y):
        return False


class BrokenAntisymmetry(PartialOrder):
    name = "broken-antisym"

    def leq(self, x, y):
        return True  # everything ⊑ everything


class BrokenTransitivity(PartialOrder):
    """0 ⊑ 1, 1 ⊑ 2, but 0 ⋢ 2."""

    name = "broken-trans"

    def leq(self, x, y):
        return x == y or (x, y) in {(0, 1), (1, 2)}


class TestLawDetectors:
    def test_reflexivity_violation(self):
        with pytest.raises(LawViolation):
            check_reflexive(BrokenReflexivity(), [1])

    def test_antisymmetry_violation(self):
        with pytest.raises(LawViolation):
            check_antisymmetric(BrokenAntisymmetry(), [1, 2])

    def test_transitivity_violation(self):
        with pytest.raises(LawViolation):
            check_transitive(BrokenTransitivity(), [0, 1, 2])

    def test_good_orders_pass(self):
        check_partial_order(SEQ_CPO, SEQ_CPO.sample())
        check_partial_order(TF, TF.sample())

    def test_bottom_law(self):
        check_bottom(SEQ_CPO, SEQ_CPO.sample())
        check_bottom(TF, TF.sample())

    def test_check_cpo_uses_default_sample(self):
        check_cpo(SEQ_CPO)
        check_cpo(TF)


class TestFunctionChecks:
    def test_monotone_passes(self):
        check_monotone(
            lambda s: s.take(1), SEQ_CPO, SEQ_CPO, SEQ_CPO.sample(),
            name="take1",
        )

    def test_monotone_fails_on_length_flip(self):
        # reverse is not monotone under prefix order
        def rev(s):
            return fseq(*reversed(list(s)))

        with pytest.raises(LawViolation):
            check_monotone(rev, SEQ_CPO, SEQ_CPO, SEQ_CPO.sample(),
                           name="rev")

    def test_continuous_on_chain_passes(self):
        chain = [EMPTY, fseq(1), fseq(1, 2)]
        check_continuous_on_chain(
            lambda s: s.take(2), SEQ_CPO, SEQ_CPO, chain, name="take2"
        )

    def test_continuous_on_empty_chain_is_vacuous(self):
        check_continuous_on_chain(
            lambda s: s, SEQ_CPO, SEQ_CPO, [], name="id"
        )

    def test_continuity_surrogate_catches_non_monotone(self):
        from repro.order.poset import NotAChainError

        def weird(s):
            # images descend ⇒ not a chain ⇒ f cannot be monotone
            return fseq(9) if len(s) == 0 else EMPTY

        chain = [EMPTY, fseq(1)]
        with pytest.raises((LawViolation, NotAChainError)):
            check_continuous_on_chain(
                weird, SEQ_CPO, SEQ_CPO, chain, name="weird"
            )
