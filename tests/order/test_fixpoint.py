"""Unit tests for repro.order.fixpoint (Theorem 3, Kleene iteration)."""

import pytest

from repro.order.fixpoint import (
    is_fixpoint,
    is_least_fixpoint,
    kleene_chain,
    kleene_fixpoint,
)
from repro.seq import SEQ_CPO, EMPTY, FiniteSeq, fseq


def append_upto(limit: int):
    """h(s) = s extended by one 0, saturating at ``limit`` elements."""

    def h(s: FiniteSeq) -> FiniteSeq:
        if len(s) >= limit:
            return s
        return s.append(0)

    return h


class TestKleeneFixpoint:
    def test_converges_to_saturation(self):
        result = kleene_fixpoint(SEQ_CPO, append_upto(3))
        assert result.converged
        assert result.value == fseq(0, 0, 0)
        assert result.iterations == 3

    def test_identity_converges_immediately(self):
        result = kleene_fixpoint(SEQ_CPO, lambda s: s)
        assert result.converged
        assert result.value == EMPTY
        assert result.iterations == 0

    def test_chain_recorded(self):
        result = kleene_fixpoint(SEQ_CPO, append_upto(2))
        assert result.chain[0] == EMPTY
        assert result.chain[1] == fseq(0)
        assert result.chain[2] == fseq(0, 0)

    def test_fuel_exhaustion_reported(self):
        result = kleene_fixpoint(
            SEQ_CPO, lambda s: s.append(0), max_iterations=5
        )
        assert not result.converged
        assert result.iterations == 5
        assert len(result.value) == 5

    def test_nonmonotone_detected(self):
        # h that shrinks leaves the ascending chain
        def bad(s):
            return EMPTY if len(s) == 1 else s.append(0)

        with pytest.raises(ValueError):
            kleene_fixpoint(SEQ_CPO, bad)

    def test_negative_fuel_rejected(self):
        with pytest.raises(ValueError):
            kleene_fixpoint(SEQ_CPO, lambda s: s, max_iterations=-1)

    def test_approximation_is_below_lfp(self):
        # fuelled prefix of the Kleene chain is ⊑ the true lfp
        result = kleene_fixpoint(SEQ_CPO, append_upto(10),
                                 max_iterations=4)
        lfp = kleene_fixpoint(SEQ_CPO, append_upto(10)).value
        assert SEQ_CPO.leq(result.value, lfp)


class TestKleeneChain:
    def test_lazy_chain_matches_iteration(self):
        chain = kleene_chain(SEQ_CPO, append_upto(3))
        assert chain[0] == EMPTY
        assert chain[2] == fseq(0, 0)
        assert chain[9] == fseq(0, 0, 0)  # saturated


class TestFixpointPredicates:
    def test_is_fixpoint(self):
        h = append_upto(2)
        assert is_fixpoint(SEQ_CPO, h, fseq(0, 0))
        assert not is_fixpoint(SEQ_CPO, h, fseq(0))

    def test_is_least_fixpoint(self):
        # h saturating at 1: fixpoints among candidates are ⟨0⟩ and (by
        # construction of h) nothing smaller.
        h = append_upto(1)
        candidates = [EMPTY, fseq(0), fseq(0, 0)]
        assert is_least_fixpoint(SEQ_CPO, h, fseq(0), candidates)
        assert not is_least_fixpoint(SEQ_CPO, h, EMPTY, candidates)
