"""Unit tests for repro.order.poset."""

import pytest

from repro.order.poset import (
    DiscreteOrder,
    DualOrder,
    NotAChainError,
    find_lub,
    maximal_elements,
    minimal_elements,
    sort_chain,
)
from repro.seq import SEQ_CPO, fseq


class TestDiscreteOrder:
    def test_leq_is_equality(self):
        order = DiscreteOrder()
        assert order.leq(1, 1)
        assert not order.leq(1, 2)

    def test_comparable(self):
        order = DiscreteOrder()
        assert order.comparable(3, 3)
        assert not order.comparable(3, 4)

    def test_eq_via_mutual_leq(self):
        order = DiscreteOrder()
        assert order.eq("x", "x")
        assert not order.eq("x", "y")


class TestDualOrder:
    def test_reverses(self):
        dual = DualOrder(SEQ_CPO)
        assert dual.leq(fseq(1, 2), fseq(1))
        assert not dual.leq(fseq(1), fseq(1, 2))

    def test_name(self):
        assert "dual" in DualOrder(SEQ_CPO).name


class TestUpperBounds:
    def test_is_upper_bound(self):
        elems = [fseq(), fseq(1), fseq(1, 2)]
        assert SEQ_CPO.is_upper_bound(fseq(1, 2), elems)
        assert SEQ_CPO.is_upper_bound(fseq(1, 2, 3), elems)
        assert not SEQ_CPO.is_upper_bound(fseq(1), elems)

    def test_is_lub(self):
        elems = [fseq(), fseq(1)]
        candidates = [fseq(), fseq(1), fseq(1, 2), fseq(2)]
        assert SEQ_CPO.is_lub(fseq(1), elems, candidates)
        assert not SEQ_CPO.is_lub(fseq(1, 2), elems, candidates)

    def test_lub_of_finite_chain(self):
        chain = [fseq(), fseq(7), fseq(7, 8)]
        assert SEQ_CPO.lub_of_finite(chain) == fseq(7, 8)

    def test_lub_of_finite_unordered_input(self):
        chain = [fseq(7, 8), fseq(), fseq(7)]
        assert SEQ_CPO.lub_of_finite(chain) == fseq(7, 8)

    def test_lub_of_finite_rejects_non_chain(self):
        with pytest.raises(NotAChainError):
            SEQ_CPO.lub_of_finite([fseq(1), fseq(2)])

    def test_lub_of_empty_raises(self):
        with pytest.raises(ValueError):
            SEQ_CPO.lub_of_finite([])


class TestChains:
    def test_is_chain_true(self):
        assert SEQ_CPO.is_chain([fseq(), fseq(1), fseq(1, 2)])

    def test_is_chain_false(self):
        assert not SEQ_CPO.is_chain([fseq(1), fseq(2)])

    def test_empty_is_not_a_chain(self):
        # the paper requires chains to be nonempty
        assert not SEQ_CPO.is_chain([])

    def test_singleton_is_chain(self):
        assert SEQ_CPO.is_chain([fseq(5)])

    def test_is_ascending(self):
        assert SEQ_CPO.is_ascending([fseq(), fseq(1)])
        assert not SEQ_CPO.is_ascending([fseq(1), fseq()])

    def test_sort_chain(self):
        out = sort_chain(SEQ_CPO, [fseq(1, 2), fseq(), fseq(1)])
        assert out == [fseq(), fseq(1), fseq(1, 2)]

    def test_sort_chain_rejects_incomparables(self):
        with pytest.raises(NotAChainError):
            sort_chain(SEQ_CPO, [fseq(1), fseq(2)])


class TestExtrema:
    def test_maximal_elements(self):
        elems = [fseq(), fseq(1), fseq(2)]
        assert set(map(tuple, maximal_elements(SEQ_CPO, elems))) == \
            {(1,), (2,)}

    def test_minimal_elements(self):
        elems = [fseq(), fseq(1), fseq(2)]
        assert minimal_elements(SEQ_CPO, elems) == [fseq()]

    def test_find_lub(self):
        universe = [fseq(), fseq(1), fseq(1, 2), fseq(1, 3)]
        assert find_lub(SEQ_CPO, [fseq(), fseq(1)], universe) == fseq(1)

    def test_find_lub_missing(self):
        universe = [fseq(1, 2), fseq(1, 3)]
        assert find_lub(SEQ_CPO, [fseq(1, 2), fseq(1, 3)],
                        universe) is None
