"""Unit tests for repro.order.cpo (cpos and countable chains, §3/§6)."""

import pytest

from repro.order.cpo import CountableChain
from repro.order.poset import NotAChainError
from repro.seq import SEQ_CPO, EMPTY, fseq


class TestCpoBasics:
    def test_bottom_below_everything(self):
        for x in SEQ_CPO.sample():
            assert SEQ_CPO.leq(SEQ_CPO.bottom, x)

    def test_is_bottom(self):
        assert SEQ_CPO.is_bottom(EMPTY)
        assert not SEQ_CPO.is_bottom(fseq(1))

    def test_lub_chain_default(self):
        assert SEQ_CPO.lub_chain([EMPTY, fseq(1)]) == fseq(1)

    def test_lub_chain_empty_gives_bottom(self):
        assert SEQ_CPO.lub_chain([]) == EMPTY

    def test_lub_chain_rejects_descent(self):
        with pytest.raises(NotAChainError):
            SEQ_CPO.lub_chain([fseq(1), EMPTY])

    def test_eq_upto_default_is_exact_for_finites(self):
        assert SEQ_CPO.eq_upto(fseq(1), fseq(1), 1)
        assert not SEQ_CPO.eq_upto(fseq(1), fseq(2), 1)


class TestCountableChain:
    def test_from_elements_basic(self):
        chain = CountableChain.from_elements(
            SEQ_CPO, [EMPTY, fseq(1), fseq(1, 2)]
        )
        assert chain[0] == EMPTY
        assert chain[2] == fseq(1, 2)
        # eventually constant
        assert chain[10] == fseq(1, 2)

    def test_from_elements_requires_bottom_start(self):
        with pytest.raises(ValueError):
            CountableChain.from_elements(SEQ_CPO, [fseq(1)])

    def test_from_elements_requires_ascent(self):
        with pytest.raises(NotAChainError):
            CountableChain.from_elements(
                SEQ_CPO, [EMPTY, fseq(1), fseq(2)]
            )

    def test_from_elements_rejects_empty(self):
        with pytest.raises(ValueError):
            CountableChain.from_elements(SEQ_CPO, [])

    def test_by_iteration(self):
        # step appends a 0: ⊥, ⟨0⟩, ⟨0 0⟩, …
        chain = CountableChain.by_iteration(
            SEQ_CPO, lambda s: s.append(0)
        )
        assert chain[0] == EMPTY
        assert chain[3] == fseq(0, 0, 0)

    def test_negative_index_rejected(self):
        chain = CountableChain.by_iteration(
            SEQ_CPO, lambda s: s.append(0)
        )
        with pytest.raises(IndexError):
            chain[-1]

    def test_prefix(self):
        chain = CountableChain.by_iteration(
            SEQ_CPO, lambda s: s.append(0)
        )
        assert chain.prefix(3) == [EMPTY, fseq(0), fseq(0, 0)]

    def test_pre_pairs(self):
        chain = CountableChain.by_iteration(
            SEQ_CPO, lambda s: s.append(0)
        )
        pairs = list(chain.pre_pairs(2))
        assert pairs == [(EMPTY, fseq(0)), (fseq(0), fseq(0, 0))]

    def test_validate_passes_for_good_chain(self):
        chain = CountableChain.by_iteration(
            SEQ_CPO, lambda s: s.append(0)
        )
        chain.validate(5)  # should not raise

    def test_validate_catches_descent(self):
        bad = CountableChain(
            SEQ_CPO, lambda n: fseq(0) if n == 1 else EMPTY
        )
        with pytest.raises(NotAChainError):
            bad.validate(3)

    def test_validate_catches_wrong_start(self):
        bad = CountableChain(SEQ_CPO, lambda n: fseq(9))
        with pytest.raises(ValueError):
            bad.validate(1)

    def test_stabilizes_by(self):
        chain = CountableChain.from_elements(
            SEQ_CPO, [EMPTY, fseq(1)]
        )
        assert not chain.stabilizes_by(0)
        assert chain.stabilizes_by(1)

    def test_lub_upto(self):
        chain = CountableChain.by_iteration(
            SEQ_CPO, lambda s: s.append(0)
        )
        assert chain.lub_upto(2) == fseq(0, 0)


class TestLemma1:
    """Lemma 1 (Loeckx–Sieber 4.11): if every element of chain S is
    below some element of chain T, then lub(S) ⊑ lub(T)."""

    def test_dominated_chain(self):
        s = [EMPTY, fseq(1), fseq(1, 2)]
        t = [EMPTY, fseq(1, 2), fseq(1, 2, 3)]
        assert all(
            any(SEQ_CPO.leq(x, y) for y in t) for x in s
        )
        assert SEQ_CPO.leq(SEQ_CPO.lub_chain(s), SEQ_CPO.lub_chain(t))

    def test_exhaustive_over_prefix_chains(self):
        # every pair of prefix chains of a common sequence satisfies
        # the hypothesis in one direction; check the conclusion
        base = fseq(1, 2, 3, 4)
        chains = [
            [base.take(i) for i in range(k + 1)]
            for k in range(len(base) + 1)
        ]
        for s in chains:
            for t in chains:
                if all(any(SEQ_CPO.leq(x, y) for y in t) for x in s):
                    assert SEQ_CPO.leq(
                        SEQ_CPO.lub_chain(s), SEQ_CPO.lub_chain(t)
                    )

    def test_contrapositive_detects_escape(self):
        s = [EMPTY, fseq(9)]
        t = [EMPTY, fseq(1)]
        # fseq(9) is below nothing in t, and indeed lub(s) ⋢ lub(t)
        assert not all(
            any(SEQ_CPO.leq(x, y) for y in t) for x in s
        )
        assert not SEQ_CPO.leq(
            SEQ_CPO.lub_chain(s), SEQ_CPO.lub_chain(t)
        )
