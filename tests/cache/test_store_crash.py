"""Crash-consistency tests for the persistent store.

Three adversaries: concurrent multi-process writers on one key (the
``os.replace`` atomicity claim), a corruptor racing the evict path,
and a disk that stops cooperating (read-only directory, ``ENOSPC``) —
the store must degrade to warm-miss in-memory mode with a single
warning, never crash, and never serve a torn or wrong entry.
"""

import errno
import json
import multiprocessing
import os
import warnings

import pytest

from repro.cache.checkpoint import SolverCheckpoint
from repro.cache.store import CacheStore

FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()

KEY = {"grid": "dfm", "cell": [1, 2, 3]}


def _hammer(root, value, rounds):
    store = CacheStore(root)
    for _ in range(rounds):
        store.put("cell", KEY, value)


def _corrupt(path, rounds):
    # a hostile/crashed writer scribbling NON-atomically at the entry
    for _ in range(rounds):
        try:
            with open(path, "w", encoding="utf-8") as fh:
                fh.write('{"version": 1, "value"')  # torn JSON
        except FileNotFoundError:
            pass


@pytest.mark.skipif(not FORK_AVAILABLE,
                    reason="multi-process stress requires fork")
class TestConcurrentWriters:
    def test_two_writers_same_key_never_torn(self, tmp_path):
        """Satellite: two processes hammering one key — every read
        observes either writer's complete, bit-identical entry."""
        value_a = {"writer": "a", "payload": list(range(50))}
        value_b = {"writer": "b", "payload": list(range(50, 100))}
        ctx = multiprocessing.get_context("fork")
        workers = [
            ctx.Process(target=_hammer,
                        args=(tmp_path, value_a, 300)),
            ctx.Process(target=_hammer,
                        args=(tmp_path, value_b, 300)),
        ]
        for w in workers:
            w.start()
        reader = CacheStore(tmp_path)
        path = reader.path_for("cell", KEY)
        observed = set()
        while any(w.is_alive() for w in workers):
            # raw read: with os.replace the file is always one
            # writer's complete entry, never a mix or a prefix
            try:
                entry = json.loads(path.read_text(encoding="utf-8"))
            except FileNotFoundError:
                continue
            assert entry["value"] in (value_a, value_b)
            observed.add(entry["value"]["writer"])
            got = reader.get("cell", KEY)
            assert got in (value_a, value_b, None)
        for w in workers:
            w.join()
            assert w.exitcode == 0
        assert observed, "reader never saw a completed write"
        assert reader.get("cell", KEY) in (value_a, value_b)
        # no temp-file litter from either writer
        assert list(tmp_path.rglob("*.tmp")) == []

    def test_evict_vs_write_race_never_serves_corrupt(self, tmp_path):
        """A corruptor scribbling torn JSON at the entry while a
        writer keeps re-putting: ``get`` yields the good value or a
        miss, never an exception, never a partial entry."""
        value = {"writer": "good", "n": 7}
        store = CacheStore(tmp_path)
        store.put("cell", KEY, value)
        path = store.path_for("cell", KEY)
        ctx = multiprocessing.get_context("fork")
        corruptor = ctx.Process(target=_corrupt, args=(path, 500))
        writer = ctx.Process(target=_hammer,
                             args=(tmp_path, value, 500))
        corruptor.start()
        writer.start()
        while corruptor.is_alive() or writer.is_alive():
            got = store.get("cell", KEY)
            assert got == value or got is None
        corruptor.join()
        writer.join()
        # whatever the final interleaving, the store self-heals: a
        # torn survivor is evicted (miss), then a fresh put restores
        store.put("cell", KEY, value)
        assert store.get("cell", KEY) == value


class TestKilledWriterResidue:
    def test_stale_tmp_files_are_inert(self, tmp_path):
        """The residue a SIGKILLed writer can actually leave — an
        orphaned ``.tmp`` — must neither corrupt reads nor block
        writes."""
        store = CacheStore(tmp_path)
        store.put("cell", KEY, "good")
        parent = store.path_for("cell", KEY).parent
        (parent / ".deadbeef.tmp").write_text('{"version": 1, "val')
        assert store.get("cell", KEY) == "good"
        store.put("cell", KEY, "newer")
        assert store.get("cell", KEY) == "newer"

    def test_truncated_entry_evicted_not_trusted(self, tmp_path):
        store = CacheStore(tmp_path)
        store.put("cell", KEY, "good")
        path = store.path_for("cell", KEY)
        path.write_text(path.read_text()[:25])  # simulate torn rename
        assert store.get("cell", KEY) is None
        assert not path.exists()  # evicted
        assert store.counters()["evict"] == 1


class TestDegradedMode:
    def test_read_only_dir_degrades_with_single_warning(
            self, tmp_path, monkeypatch):
        store = CacheStore(tmp_path / "cache")

        import pathlib

        def deny_mkdir(self, *a, **k):
            raise PermissionError(errno.EACCES, "read-only", str(self))

        monkeypatch.setattr(pathlib.Path, "mkdir", deny_mkdir)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            store.put("cell", KEY, "v1")
            store.put("cell", {"k": 2}, "v2")
            store.put("solver", KEY, "v3")
        warned = [w for w in caught
                  if issubclass(w.category, RuntimeWarning)]
        assert len(warned) == 1  # one warning, not one per put
        assert "in-memory" in str(warned[0].message)
        assert store.degraded
        # warm-miss mode: everything written since degrading hits
        assert store.get("cell", KEY) == "v1"
        assert store.get("cell", {"k": 2}) == "v2"
        assert store.get("solver", KEY) == "v3"
        stats = store.stats()
        assert stats["degraded"] is True
        assert stats["memory_entries"] == 3

    def test_disk_full_degrades(self, tmp_path, monkeypatch):
        import repro.cache.store as store_mod

        store = CacheStore(tmp_path)
        store.put("cell", {"k": "pre"}, "on-disk")

        def no_space(*a, **k):
            raise OSError(errno.ENOSPC, "no space left on device")

        monkeypatch.setattr(store_mod.tempfile, "mkstemp", no_space)
        with pytest.warns(RuntimeWarning, match="in-memory"):
            store.put("cell", KEY, "overflow")
        assert store.degraded
        assert store.get("cell", KEY) == "overflow"
        # entries that made it to disk before the disk filled still
        # serve (degradation only disables *writes*)
        assert store.get("cell", {"k": "pre"}) == "on-disk"
        # and nothing new lands on disk
        assert not store.path_for("cell", KEY).exists()

    def test_serialization_errors_still_raise(self, tmp_path):
        store = CacheStore(tmp_path)
        with pytest.raises(TypeError):
            store.put("cell", KEY, object())  # caller bug, not disk
        assert not store.degraded

    def test_healthy_store_not_degraded(self, tmp_path):
        store = CacheStore(tmp_path)
        store.put("cell", KEY, "v")
        assert not store.degraded
        assert store.stats()["degraded"] is False
        assert store.stats()["memory_entries"] == 0


class TestFsync:
    def test_fsync_store_round_trips(self, tmp_path):
        store = CacheStore(tmp_path, fsync=True)
        store.put("cell", KEY, {"durable": True})
        assert store.get("cell", KEY) == {"durable": True}
        assert CacheStore(tmp_path).get("cell", KEY) == \
            {"durable": True}

    def test_checkpoint_save_is_atomic(self, tmp_path, monkeypatch):
        ckpt = SolverCheckpoint(description="d", depth=3,
                                unvisited=[[["b", "0"]]])
        path = tmp_path / "ckpt.json"
        ckpt.save(str(path))
        original = path.read_text()

        # a save that dies before the rename leaves the old file
        # intact and no temp litter behind
        def boom(*a, **k):
            raise OSError(errno.ENOSPC, "no space")

        monkeypatch.setattr(os, "replace", boom)
        bigger = SolverCheckpoint(description="d", depth=4,
                                  unvisited=[[["b", "0"]], []])
        with pytest.raises(OSError):
            bigger.save(str(path))
        monkeypatch.undo()
        assert path.read_text() == original
        assert list(tmp_path.glob("*.tmp")) == []
        loaded = SolverCheckpoint.load(str(path))
        assert loaded.digest() == ckpt.digest()

    def test_checkpoint_save_fsync(self, tmp_path):
        ckpt = SolverCheckpoint(description="d", depth=2)
        path = tmp_path / "ckpt.json"
        ckpt.save(str(path), fsync=True)
        assert SolverCheckpoint.load(str(path)).digest() == \
            ckpt.digest()
