"""Unit tests for the persistent content-addressed store."""

import json

import pytest

from repro.cache.store import CACHE_VERSION, CacheStore


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        store = CacheStore(tmp_path)
        store.put("solver", {"k": 1}, {"answer": 42})
        assert store.get("solver", {"k": 1}) == {"answer": 42}
        assert store.counters() == {"hit": 1, "miss": 0,
                                    "write": 1, "evict": 0}

    def test_missing_entry_is_a_miss(self, tmp_path):
        store = CacheStore(tmp_path)
        assert store.get("solver", {"k": 1}) is None
        assert store.counters()["miss"] == 1

    def test_key_is_content_addressed(self, tmp_path):
        # dict ordering must not matter: same content, same entry
        store = CacheStore(tmp_path)
        store.put("cell", {"a": 1, "b": 2}, "v")
        assert store.get("cell", {"b": 2, "a": 1}) == "v"

    def test_kinds_partition_the_namespace(self, tmp_path):
        store = CacheStore(tmp_path)
        store.put("solver", {"k": 1}, "solver-value")
        assert store.get("cell", {"k": 1}) is None

    def test_persists_across_store_instances(self, tmp_path):
        CacheStore(tmp_path).put("cell", [1, 2], "v")
        assert CacheStore(tmp_path).get("cell", [1, 2]) == "v"

    def test_overwrite_wins(self, tmp_path):
        store = CacheStore(tmp_path)
        store.put("cell", "k", "old")
        store.put("cell", "k", "new")
        assert store.get("cell", "k") == "new"


class TestCorruptAndStale:
    def test_corrupt_json_is_a_miss_and_evicted(self, tmp_path):
        store = CacheStore(tmp_path)
        path = store.put("cell", "k", "v")
        path.write_text("{not json", encoding="utf-8")
        assert store.get("cell", "k") is None
        assert not path.exists()
        assert store.counters()["evict"] == 1

    def test_truncated_entry_is_a_miss(self, tmp_path):
        # strict parse (missing 'version') must surface as a miss,
        # never as an exception or a wrong answer
        store = CacheStore(tmp_path)
        path = store.put("cell", "k", "v")
        entry = json.loads(path.read_text())
        del entry["version"]
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert store.get("cell", "k") is None

    def test_stale_format_version_is_a_miss(self, tmp_path):
        store = CacheStore(tmp_path)
        path = store.put("cell", "k", "v")
        entry = json.loads(path.read_text())
        entry["version"] = CACHE_VERSION + 1
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert store.get("cell", "k") is None
        assert not path.exists()

    def test_stale_library_version_is_a_miss(self, tmp_path):
        store = CacheStore(tmp_path)
        path = store.put("cell", "k", "v")
        entry = json.loads(path.read_text())
        entry["repro_version"] = "0.0.0-older"
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert store.get("cell", "k") is None

    def test_renamed_entry_is_a_miss(self, tmp_path):
        # a file moved under another key's digest disagrees with its
        # recorded key_digest — treat as a collision, not an answer
        store = CacheStore(tmp_path)
        src = store.put("cell", "k1", "v1")
        dst = store.path_for("cell", "k2")
        src.rename(dst)
        assert store.get("cell", "k2") is None

    def test_no_tmp_droppings_after_put(self, tmp_path):
        store = CacheStore(tmp_path)
        store.put("cell", "k", "v")
        leftovers = [p for p in (tmp_path / "cell").iterdir()
                     if p.suffix != ".json"]
        assert leftovers == []


class TestStrictParse:
    def test_non_dict_rejected(self):
        with pytest.raises(ValueError, match="not an object"):
            CacheStore.parse_entry([1, 2, 3])

    def test_missing_version_names_present_keys(self):
        with pytest.raises(ValueError) as info:
            CacheStore.parse_entry({"value": 1, "kind": "cell"})
        assert "version" in str(info.value)
        assert "kind" in str(info.value)
        assert "value" in str(info.value)

    def test_missing_value_rejected(self):
        with pytest.raises(ValueError, match="'value'"):
            CacheStore.parse_entry({"version": CACHE_VERSION})


class TestMaintenance:
    def test_clear_kind(self, tmp_path):
        store = CacheStore(tmp_path)
        store.put("cell", "a", 1)
        store.put("cell", "b", 2)
        store.put("solver", "c", 3)
        assert store.clear("cell") == 2
        assert store.get("solver", "c") == 3

    def test_clear_all(self, tmp_path):
        store = CacheStore(tmp_path)
        store.put("cell", "a", 1)
        store.put("solver", "c", 3)
        assert store.clear() == 2
        assert store.stats()["total_entries"] == 0

    def test_clear_empty_store(self, tmp_path):
        assert CacheStore(tmp_path / "nonexistent").clear() == 0

    def test_stats_census(self, tmp_path):
        store = CacheStore(tmp_path)
        store.put("cell", "a", 1)
        store.put("cell", "b", 2)
        store.put("solver", "c", 3)
        stats = store.stats()
        assert stats["entries"] == {"cell": 2, "solver": 1}
        assert stats["total_entries"] == 3
        assert stats["total_bytes"] > 0
        assert stats["version"] == CACHE_VERSION

    def test_tracer_events_emitted(self, tmp_path):
        from repro.obs.sinks import RingBufferSink
        from repro.obs.tracer import Tracer

        ring = RingBufferSink()
        store = CacheStore(tmp_path, tracer=Tracer([ring]))
        store.put("cell", "k", "v")
        store.get("cell", "k")
        store.get("cell", "other")
        names = [r.name for r in ring if r.category == "cache"]
        assert "cache.write" in names
        assert "cache.hit" in names
        assert "cache.miss" in names
