"""Unit tests for checkpoint (de)serialization and strictness."""

import json

import pytest

from repro.cache.checkpoint import CHECKPOINT_VERSION, SolverCheckpoint


def sample() -> SolverCheckpoint:
    return SolverCheckpoint(
        description="dfm", depth=4, limit_depth=64,
        nodes_explored=50,
        truncation_reason="node budget (50) exhausted at depth 3",
        finite_solutions=[[]],
        frontier=[[["b", "0"]]],
        unvisited=[[["b", "0"], ["d", "0"]], [["c", "1"]]],
        meta={"note": "test"},
    )


class TestRoundTrip:
    def test_json_round_trip(self):
        ckpt = sample()
        back = SolverCheckpoint.from_json(ckpt.to_json())
        assert back == ckpt

    def test_save_load(self, tmp_path):
        path = tmp_path / "ck.json"
        ckpt = sample()
        ckpt.save(str(path))
        assert SolverCheckpoint.load(str(path)) == ckpt

    def test_digest_ignores_meta(self):
        a = sample()
        b = sample()
        b.meta["extra"] = "noise"
        assert a.digest() == b.digest()

    def test_digest_covers_buckets(self):
        a = sample()
        b = sample()
        b.unvisited = b.unvisited[:1]
        assert a.digest() != b.digest()

    def test_len_and_exhausted(self):
        ckpt = sample()
        assert len(ckpt) == 4
        assert not ckpt.exhausted
        ckpt.unvisited = []
        assert ckpt.exhausted


class TestStrictLoader:
    def test_missing_version_names_present_keys(self):
        data = sample().to_dict()
        del data["version"]
        with pytest.raises(ValueError) as info:
            SolverCheckpoint.from_dict(data)
        msg = str(info.value)
        assert "version" in msg
        assert "depth" in msg  # names what IS there

    def test_unsupported_version_rejected(self):
        data = sample().to_dict()
        data["version"] = CHECKPOINT_VERSION + 1
        with pytest.raises(ValueError, match="unsupported"):
            SolverCheckpoint.from_dict(data)

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError, match="not an object"):
            SolverCheckpoint.from_dict([1, 2])

    def test_truncated_file_rejected_at_load(self, tmp_path):
        # simulate a write cut short: valid JSON prefix of the entry
        path = tmp_path / "ck.json"
        full = sample().to_dict()
        partial = {k: full[k] for k in ("depth", "frontier")}
        path.write_text(json.dumps(partial), encoding="utf-8")
        with pytest.raises(ValueError, match="version"):
            SolverCheckpoint.load(str(path))
