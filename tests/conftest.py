"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.channels import Channel, Event
from repro.seq import FiniteSeq
from repro.traces import Trace


# ---------------------------------------------------------------------------
# channels
# ---------------------------------------------------------------------------

@pytest.fixture
def chan_b() -> Channel:
    return Channel("b", alphabet={0, 2, 4})


@pytest.fixture
def chan_c() -> Channel:
    return Channel("c", alphabet={1, 3, 5})


@pytest.fixture
def chan_d() -> Channel:
    return Channel("d", alphabet={0, 1, 2, 3, 4, 5})


@pytest.fixture
def bit_channel() -> Channel:
    return Channel("bit", alphabet={"T", "F"})


# ---------------------------------------------------------------------------
# hypothesis strategies
# ---------------------------------------------------------------------------

def finite_seqs(elements=st.integers(min_value=-4, max_value=7),
                max_size: int = 8):
    """Strategy for :class:`FiniteSeq` values."""
    return st.lists(elements, max_size=max_size).map(FiniteSeq)


def bit_seqs(max_size: int = 8):
    return finite_seqs(st.sampled_from(["T", "F"]), max_size=max_size)


def traces_over(channels: list[Channel], max_size: int = 6):
    """Strategy for finite traces over the given channels."""
    event = st.one_of([
        st.sampled_from(sorted(c.alphabet, key=repr)).map(
            lambda m, c=c: Event(c, m)
        )
        for c in channels
    ])
    return st.lists(event, max_size=max_size).map(Trace.finite)


# re-export for test modules
__all__ = ["bit_seqs", "finite_seqs", "traces_over"]
