"""§8.2: auxiliary channels are essential — finite ticks needs one.

The paper asserts ("consider a process that outputs a finite number of
ticks") that some processes cannot be described without auxiliary
channels.  The argument, made concrete for the tick alphabet ``{T}``:

The traces over the single channel ``d`` with alphabet ``{T}`` are
``T^i`` (i ≥ 0) and ``T^ω``.  Suppose a description ``f ⟵ g`` over
``d`` alone has *every* ``T^i`` among its smooth solutions.  Then:

* smoothness of ``T^{i+1}`` includes the edge condition
  ``f(T^{i+1}) ⊑ g(T^i)`` — which is precisely the smoothness condition
  ``T^ω`` needs at each of its pre-pairs;
* ``f(T^i) = g(T^i)`` for all i, so by continuity
  ``f(T^ω) = lub f(T^i) = lub g(T^i) = g(T^ω)`` — the limit condition.

Hence ``T^ω`` is forcibly a smooth solution too: no description over
``d`` alone has smooth-solution set ``{T^i : i ≥ 0}``.  With an
auxiliary fair-random channel, §4.8's description achieves exactly
that set.  These tests check the forcing on a family of concrete
candidate descriptions and the separation by the auxiliary version.
"""

import pytest

from repro.channels.channel import Channel
from repro.core.description import Description
from repro.functions.base import chan, const_seq
from repro.functions.logic import r_of
from repro.functions.seq_fns import (
    prepend_of,
    take_of,
    until_first_f_of,
)
from repro.processes import finite_ticks
from repro.seq.builders import repeat, repeat_finite
from repro.seq.finite import fseq
from repro.traces.trace import Trace

D = Channel("d", alphabet={"T"})


def tick_trace(i):
    return Trace.from_pairs([(D, "T")] * i)


OMEGA = Trace.cycle_pairs([(D, "T")])

#: Candidate single-channel descriptions — every combinator in the
#: library that could plausibly aim at "finitely many ticks".
CANDIDATES = [
    Description(chan(D), chan(D), name="d ⟵ d"),
    Description(chan(D), prepend_of("T", chan(D)), name="d ⟵ T;d"),
    Description(prepend_of("T", chan(D)), chan(D), name="T;d ⟵ d"),
    Description(chan(D), const_seq(repeat("T"), name="T^ω"),
                name="d ⟵ T^ω"),
    Description(chan(D), const_seq(repeat_finite("T", 3)),
                name="d ⟵ T³"),
    Description(r_of(chan(D)), r_of(chan(D)), name="R(d) ⟵ R(d)"),
    Description(until_first_f_of(chan(D)), chan(D),
                name="g(d) ⟵ d"),
    Description(take_of(2, chan(D)), take_of(2, chan(D)),
                name="take₂ ⟵ take₂"),
    Description(const_seq(fseq()), const_seq(fseq()), name="K ⟵ K"),
]

MAX_I = 5


@pytest.mark.parametrize("desc", CANDIDATES, ids=lambda d: d.name)
def test_forcing_lemma_on_candidates(desc):
    """If all T^i are smooth for a candidate, T^ω is too."""
    all_finite_smooth = all(
        desc.is_smooth_solution(tick_trace(i)) for i in range(MAX_I)
    )
    if all_finite_smooth:
        assert desc.is_smooth_solution(OMEGA, depth=24), desc.name


@pytest.mark.parametrize("desc", CANDIDATES, ids=lambda d: d.name)
def test_no_candidate_achieves_the_set(desc):
    """No single-channel candidate has solution set {T^i} \\ {T^ω}."""
    achieves = (
        all(desc.is_smooth_solution(tick_trace(i))
            for i in range(MAX_I))
        and not desc.is_smooth_solution(OMEGA, depth=24)
    )
    assert not achieves, desc.name


class TestAuxiliaryVersionSeparates:
    def test_finite_ticks_achieves_the_set(self):
        process = finite_ticks.make()
        d = next(iter(process.visible_channels))
        for i in range(MAX_I):
            t = Trace.from_pairs([(d, "T")] * i)
            assert process.is_trace(t, depth=32), i
        omega = Trace.cycle_pairs([(d, "T")])
        assert not process.is_trace(omega)

    def test_separation_is_by_the_auxiliary_channel(self):
        # projecting the description onto the visible channel alone
        # loses the separation: the d-only residue of the §4.8 system
        # is "d is a T-stream", which the forcing lemma covers
        process = finite_ticks.make()
        assert process.auxiliary_channels  # the separator exists
