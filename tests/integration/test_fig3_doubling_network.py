"""Integration: the Figure-3 network (§2.3) — P, Q and dfm.

Claims reproduced:

* the sequences ``x`` and ``y`` are smooth solutions of
  ``even(d) ⟵ 0;2×d , odd(d) ⟵ 2×d+1``;
* the sequence ``z`` solves the equations but is not smooth, failing at
  its very first element (−1 would have to cause itself);
* progress: every natural number appears in the output;
* safety: ``2n`` appears only after ``n``;
* operationally, scripted schedules realize prefixes of ``x`` and ``y``.
"""

import pytest

from repro.channels.channel import Channel
from repro.channels.event import Event
from repro.core.description import Description, DescriptionSystem, combine
from repro.core.elimination import eliminate_channels
from repro.functions.base import chan
from repro.functions.seq_fns import (
    affine_of,
    even_of,
    odd_of,
    prepend_of,
    scale_of,
)
from repro.kahn.agents import affine_agent, dfm_agent, doubler_agent
from repro.kahn.scheduler import ScriptedOracle, run_network
from repro.seq.builders import misra_x, misra_y, misra_z
from repro.seq.finite import Seq
from repro.traces.trace import Trace

D = Channel("d")


def network_description() -> "Description":
    return combine([
        Description(even_of(chan(D)),
                    prepend_of(0, scale_of(2, chan(D)))),
        Description(odd_of(chan(D)), affine_of(2, 1, chan(D))),
    ], name="fig3")


def d_trace(seq: Seq, name: str = "") -> Trace:
    def gen():
        i = 0
        while True:
            try:
                yield Event(D, seq.item(i))
            except IndexError:
                return
            i += 1

    return Trace.lazy(gen(), name=name)


DEPTH = 48


class TestDenotational:
    def test_x_is_smooth(self):
        verdict = network_description().check(d_trace(misra_x(), "x"),
                                              depth=DEPTH)
        assert verdict.is_smooth

    def test_y_is_smooth(self):
        verdict = network_description().check(d_trace(misra_y(), "y"),
                                              depth=DEPTH)
        assert verdict.is_smooth

    def test_z_solves_but_is_not_smooth(self):
        verdict = network_description().check(d_trace(misra_z(), "z"),
                                              depth=DEPTH)
        assert verdict.is_solution
        assert not verdict.is_smooth

    def test_z_fails_at_first_element(self):
        # the paper: u = ε, v = ⟨−1⟩ violates odd(v) ⊑ 2×u+1
        violation = network_description().check(
            d_trace(misra_z(), "z"), depth=DEPTH
        ).first_violation
        assert violation.u.length() == 0
        assert violation.v.item(0).message == -1

    def test_no_finite_smooth_solutions(self):
        # output never stops: every finite prefix fails the limit
        desc = network_description()
        for n in range(6):
            assert not desc.limit_holds(d_trace(misra_x()).take(n))


class TestDerivedFromFullSystem:
    def test_elimination_of_b_and_c(self):
        """§2.3 derives (1,2) by eliminating b, c from the three
        component descriptions; check the derived system classifies
        x and z the same way as the hand-written one."""
        b = Channel("b_fig3")
        c = Channel("c_fig3")
        full = DescriptionSystem(
            [
                Description(chan(b),
                            prepend_of(0, scale_of(2, chan(D)))),
                Description(chan(c), affine_of(2, 1, chan(D))),
                Description(even_of(chan(D)), chan(b)),
                Description(odd_of(chan(D)), chan(c)),
            ],
            channels=[b, c, D], name="fig3-full",
        )
        derived = eliminate_channels(full, [b, c])
        assert derived.is_smooth_solution(d_trace(misra_x()),
                                          depth=32)
        assert not derived.is_smooth_solution(d_trace(misra_z()),
                                              depth=32)


class TestProperties:
    def test_progress_every_natural_appears(self):
        # §2.3: every natural number n appears eventually (induction
        # on n); empirically on a deep prefix of x and of y
        for seq in (misra_x(), misra_y()):
            seen = set(seq.take(2 ** 7 * 2))
            assert set(range(32)) <= seen

    def test_safety_doubles_preceded_by_halves(self):
        # appearance of 2n is preceded by n (n > 0)
        for seq in (misra_x(), misra_y()):
            items = list(seq.take(200))
            for i, m in enumerate(items):
                if m > 0 and m % 2 == 0:
                    assert m // 2 in items[:i], (seq, m)


class TestOperational:
    def _network(self):
        from repro.kahn.agents import tee_agent

        b = Channel("b_op", alphabet=None)
        c = Channel("c_op", alphabet=None)
        dp = Channel("d_to_P", alphabet=None)
        dq = Channel("d_to_Q", alphabet=None)
        agents = {
            # Figure 3: dfm's output d fans out to both P and Q
            "tee": tee_agent(D, [dp, dq]),
            "P": doubler_agent(dp, b),
            "Q": affine_agent(dq, c),
            "dfm": dfm_agent(b, c, D),
        }
        return [b, c, D, dp, dq], agents

    def test_histories_satisfy_smoothness(self):
        # every operational history's d-projection is a node of the
        # §3.3 tree for the network description
        from repro.kahn.scheduler import RandomOracle

        desc = network_description()
        for seed in range(10):
            channels, agents = self._network()
            result = run_network(agents, channels,
                                 RandomOracle(seed), max_steps=80)
            d_only = result.trace.project({D})
            assert desc.smoothness_holds(
                d_only, depth=max(d_only.length(), 1)
            ), (seed, d_only)

    def test_output_is_never_minus_one(self):
        from repro.kahn.scheduler import RandomOracle

        for seed in range(10):
            channels, agents = self._network()
            result = run_network(agents, channels,
                                 RandomOracle(seed), max_steps=100)
            assert -1 not in list(result.trace.messages_on(D))

    def test_x_and_y_orders_reachable(self):
        # distinct merge disciplines yield distinct output orders;
        # sample many oracles and observe ≥ 2 distinct d-prefixes
        from repro.kahn.scheduler import RandomOracle

        prefixes = set()
        for seed in range(20):
            channels, agents = self._network()
            result = run_network(agents, channels,
                                 RandomOracle(seed), max_steps=80)
            prefix = tuple(result.trace.messages_on(D))[:6]
            if len(prefix) == 6:
                prefixes.add(prefix)
        assert len(prefixes) >= 2
