"""Integration: the alternating-bit protocol against its Kahn spec.

Keeps ``examples/alternating_bit.py`` honest and probes the corners the
demo glosses over: unreliable-beyond-bound channels break delivery, the
spec rejects wrong/partial deliveries, and duplicates never surface.
"""

import sys
import pathlib

import pytest

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent.parent
           / "examples")
)

from alternating_bit import (  # noqa: E402
    CHANNELS,
    MESSAGES,
    OUT,
    S2C,
    delivery_safety,
    protocol_network,
    service_spec,
)
from repro.kahn import RandomOracle, run_network  # noqa: E402
from repro.traces import Trace  # noqa: E402


class TestProtocol:
    @pytest.mark.parametrize("seed", range(8))
    def test_exact_delivery(self, seed):
        result = run_network(protocol_network(MESSAGES), CHANNELS,
                             RandomOracle(seed), max_steps=3000)
        assert result.quiescent
        visible = result.trace.project({OUT})
        assert service_spec(MESSAGES).is_smooth_solution(visible)

    def test_no_duplicates_ever(self):
        for seed in range(8):
            result = run_network(protocol_network(MESSAGES),
                                 CHANNELS, RandomOracle(seed),
                                 max_steps=3000)
            delivered = list(result.trace.messages_on(OUT))
            assert delivered == MESSAGES

    def test_safety_at_every_prefix(self):
        safety = delivery_safety(MESSAGES)
        result = run_network(protocol_network(MESSAGES), CHANNELS,
                             RandomOracle(3), max_steps=3000)
        for n in range(result.trace.length() + 1):
            assert safety(result.trace.take(n))

    def test_retransmissions_happen(self):
        # lossy channels force real retransmission work
        total_extra = 0
        for seed in range(6):
            result = run_network(protocol_network(MESSAGES),
                                 CHANNELS, RandomOracle(seed),
                                 max_steps=3000)
            total_extra += result.trace.count_on(S2C) - len(MESSAGES)
        assert total_extra > 0

    def test_spec_rejects_partial_delivery(self):
        spec = service_spec(MESSAGES)
        partial = Trace.from_pairs([(OUT, MESSAGES[0])])
        assert not spec.is_smooth_solution(partial)

    def test_spec_rejects_reordering(self):
        spec = service_spec(MESSAGES)
        wrong = Trace.from_pairs(
            [(OUT, MESSAGES[1]), (OUT, MESSAGES[0]),
             (OUT, MESSAGES[2])]
        )
        assert not spec.is_smooth_solution(wrong)

    def test_give_up_bound_respected(self):
        # with a tiny retransmit limit and hostile drops the sender
        # may give up — and then the spec correctly fails
        from alternating_bit import receiver, sender
        from repro.processes.lossy import lossy_agent
        from alternating_bit import C2R, C2S, R2C

        def fragile_network():
            return {
                "sender": sender(MESSAGES, retransmit_limit=0),
                "data-channel": lossy_agent(
                    S2C, C2R, max_consecutive_drops=None
                ),
                "ack-channel": lossy_agent(
                    R2C, C2S, max_consecutive_drops=None
                ),
                "receiver": receiver(),
            }

        outcomes = set()
        for seed in range(12):
            result = run_network(fragile_network(), CHANNELS,
                                 RandomOracle(seed), max_steps=3000)
            visible = result.trace.project({OUT})
            outcomes.add(
                service_spec(MESSAGES).is_smooth_solution(visible)
            )
        # at least one run fails the spec under unbounded loss
        assert False in outcomes
