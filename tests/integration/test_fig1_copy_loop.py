"""Integration: Figure 1 (§2.1) — the two-copy loop, denotational and
operational, plus Theorem 4's bridge."""

from repro.channels.channel import Channel
from repro.core.composition import Component, ComposedNetwork
from repro.core.fixpoint_bridge import kahn_least_fixpoint
from repro.kahn.agents import copy_agent, prepend0_agent
from repro.kahn.scheduler import RandomOracle, run_network
from repro.processes.deterministic import (
    copy_description,
    prepend0_description,
)
from repro.core.description import DescriptionSystem
from repro.seq.finite import EMPTY
from repro.traces.trace import Trace

B = Channel("b", alphabet={0})
C = Channel("c", alphabet={0})


def loop_system():
    return DescriptionSystem(
        [copy_description(B, C), copy_description(C, B)],
        channels=[B, C], name="fig1",
    )


def modified_system():
    return DescriptionSystem(
        [copy_description(B, C), prepend0_description(C, B)],
        channels=[B, C], name="fig1'",
    )


class TestPlainLoop:
    def test_lfp_is_empty(self):
        semantics = kahn_least_fixpoint(loop_system())
        assert semantics.converged
        assert all(v == EMPTY for v in semantics.environment().values())

    def test_only_smooth_solution_is_empty_trace(self):
        system = loop_system()
        assert system.is_smooth_solution(Trace.empty())
        import itertools

        from repro.channels.event import Event

        events = [Event(B, 0), Event(C, 0)]
        for n in range(1, 4):
            for combo in itertools.product(events, repeat=n):
                assert not system.is_smooth_solution(
                    Trace.finite(combo)
                )

    def test_operational_run_is_silent(self):
        result = run_network(
            {"p1": copy_agent(B, C), "p2": copy_agent(C, B)},
            [B, C], RandomOracle(0), max_steps=100,
        )
        assert result.quiescent
        assert result.trace.length() == 0


class TestModifiedLoop:
    def test_lfp_is_zero_omega(self):
        semantics = kahn_least_fixpoint(modified_system(),
                                        max_iterations=20)
        assert not semantics.converged  # infinite behaviour
        lazy = semantics.lazy_environment()
        assert list(lazy[B].take(5)) == [0] * 5
        assert list(lazy[C].take(5)) == [0] * 5

    def test_infinite_trace_is_smooth(self):
        omega = Trace.cycle_pairs([(B, 0), (C, 0)])
        assert modified_system().is_smooth_solution(omega, depth=24)

    def test_network_never_terminates_operationally(self):
        result = run_network(
            {"p1": copy_agent(B, C), "p2": prepend0_agent(C, B)},
            [B, C], RandomOracle(1), max_steps=300,
        )
        assert not result.quiescent  # still running at the bound
        assert result.steps == 300
        # every message is 0 and both channels keep flowing
        assert set(e.message for e in result.trace) == {0}
        assert result.trace.count_on(B) > 10
        assert result.trace.count_on(C) > 10

    def test_finite_prefixes_are_not_quiescent(self):
        system = modified_system()
        omega = Trace.cycle_pairs([(B, 0), (C, 0)])
        for n in range(1, 5):
            assert not system.is_smooth_solution(omega.take(n))


class TestTheorem2OnFig1:
    def test_network_description_composes(self):
        net = ComposedNetwork([
            Component("p1", frozenset({B, C}),
                      copy_description(B, C)),
            Component("p2", frozenset({B, C}),
                      copy_description(C, B)),
        ])
        assert net.network_smooth(Trace.empty())
        assert net.componentwise_smooth(Trace.empty())
