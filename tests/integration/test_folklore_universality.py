"""The §4.10 folklore claim, instantiated: a nondeterministic process
(the §4.3 Random Bit) built from deterministic processes plus a fair
merge has the same trace set as its direct description.

Construction (all channels except ``o`` auxiliary):

    s1 ⟵ ⟨T⟩                       {deterministic source}
    s2 ⟵ ⟨F⟩                       {deterministic source}
    ZERO(b) ⟵ t0(s1), ONE(b) ⟵ t1(s2), e ⟵ r(b)   {fair merge}
    o ⟵ take₁(e)                   {deterministic head}

The merge order is the only nondeterminism; the head picks the winner.
Projected onto ``o`` the smooth solutions are exactly ``(o,T)`` and
``(o,F)`` — the Random Bit's trace set.
"""

import pytest

from repro.channels.channel import Channel
from repro.channels.event import Event
from repro.core.description import Description, DescriptionSystem
from repro.functions.base import chan, const_seq
from repro.functions.seq_fns import tag_of, tagged_of, take_of, untag_of
from repro.processes import random_bit
from repro.processes.process import DescribedProcess
from repro.seq.finite import fseq
from repro.traces.trace import Trace

S1 = Channel("s1", alphabet={"T"}, auxiliary=True)
S2 = Channel("s2", alphabet={"F"}, auxiliary=True)
BM = Channel("bm", alphabet={(0, "T"), (1, "F")}, auxiliary=True)
E = Channel("e", alphabet={"T", "F"}, auxiliary=True)
O = Channel("o", alphabet={"T", "F"})


def built_random_bit() -> DescribedProcess:
    system = DescriptionSystem(
        [
            Description(chan(S1), const_seq(fseq("T"), name="⟨T⟩")),
            Description(chan(S2), const_seq(fseq("F"), name="⟨F⟩")),
            Description(tagged_of(0, chan(BM)), tag_of(0, chan(S1))),
            Description(tagged_of(1, chan(BM)), tag_of(1, chan(S2))),
            Description(chan(E), untag_of(chan(BM))),
            Description(chan(O), take_of(1, chan(E))),
        ],
        channels=[S1, S2, BM, E, O],
        name="random-bit-from-fair-merge",
    )
    return DescribedProcess(
        "BuiltRandomBit", [S1, S2, BM, E, O], system,
        witness_fn=witness,
    )


def witness(t: Trace):
    """The canonical smooth solution projecting to ``(o, bit)``."""
    if not t.is_known_finite() or t.length() != 1:
        return None
    event = t.item(0)
    if event.channel != O or event.message not in ("T", "F"):
        return None
    first = event.message
    second = "F" if first == "T" else "T"

    def tagged(bit):
        return (0, "T") if bit == "T" else (1, "F")

    def src(bit):
        return S1 if bit == "T" else S2

    return Trace.finite([
        Event(src(first), first),
        Event(BM, tagged(first)),
        Event(E, first),
        Event(O, first),
        Event(src(second), second),
        Event(BM, tagged(second)),
        Event(E, second),
    ])


class TestConstruction:
    def test_witnesses_are_smooth(self):
        process = built_random_bit()
        for bit in ("T", "F"):
            t = Trace.from_pairs([(O, bit)])
            w = witness(t)
            assert process.system.is_smooth_solution(w), bit

    def test_trace_set_is_one_bit(self):
        process = built_random_bit()
        assert process.is_trace(Trace.from_pairs([(O, "T")]))
        assert process.is_trace(Trace.from_pairs([(O, "F")]))

    def test_non_traces_rejected(self):
        process = built_random_bit()
        for bad in [
            Trace.from_pairs([(O, "T"), (O, "F")]),
            Trace.from_pairs([(O, "T"), (O, "T")]),
        ]:
            assert not process.is_trace(bad), bad

    def test_empty_not_quiescent(self):
        # the sources must fire, the merge must merge, the head must
        # answer — ε is a non-quiescent history, as for §4.3's process
        process = built_random_bit()
        assert not process.system.is_smooth_solution(Trace.empty())


class TestEquivalenceWithDirectDescription:
    def test_same_visible_trace_set(self):
        built = built_random_bit()
        direct = random_bit.make()
        direct_b = next(iter(direct.channels))

        built_set = {
            tuple(e.message for e in t)
            for t in [Trace.from_pairs([(O, "T")]),
                      Trace.from_pairs([(O, "F")])]
            if built.is_trace(t)
        }
        direct_set = {
            tuple(e.message for e in t)
            for t in direct.traces_upto(3)
        }
        assert built_set == direct_set == {("T",), ("F",)}

    def test_exhaustive_enumeration_agrees(self):
        # solver over the full auxiliary alphabet, projected onto o
        built = built_random_bit()
        solutions = built.solver().explore(7).finite_solutions
        projected = {
            tuple(e.message for e in s.project(frozenset({O})))
            for s in solutions
        }
        assert projected == {("T",), ("F",)}
