"""Bridges between the paper's layers.

* §6's note: the generalized (chain-based) smooth-solution definition,
  restricted to the trace cpo, coincides with the §3.2.2 definition.
* operational catalog agents produce traces of their described
  processes (fairness processes included).
* reproducibility: a seeded oracle replays the same computation.
"""

from repro.channels.channel import Channel
from repro.core.chains import GeneralDescription
from repro.core.description import Description, combine
from repro.functions.base import chan
from repro.functions.seq_fns import even_of, odd_of
from repro.kahn.agents import (
    finite_ticks_agent,
    random_number_agent,
    tee_agent,
)
from repro.kahn.scheduler import RandomOracle, run_network
from repro.order.cpo import CountableChain
from repro.processes import finite_ticks, random_number
from repro.traces.domain import TraceCpo
from repro.traces.trace import Trace

B = Channel("b", alphabet={0, 2})
C = Channel("c", alphabet={1, 3})
D = Channel("d", alphabet={0, 1, 2, 3})


class TestSection6Note:
    """The chain-based definition restricted to traces = the §3.2.2 one."""

    def _both_verdicts(self, t: Trace):
        desc = combine([
            Description(even_of(chan(D)), chan(B)),
            Description(odd_of(chan(D)), chan(C)),
        ], name="dfm")
        # §3.2.2 (trace) definition:
        trace_level = desc.is_smooth_solution(t)
        # §6 (chain) definition, witnessed by the prefix chain:
        cpo = TraceCpo(frozenset({B, C, D}))
        general = GeneralDescription(
            lhs=desc.lhs.apply, rhs=desc.rhs.apply,
            domain=cpo, codomain=desc.codomain,
        )
        prefixes = list(t.prefixes())
        chain = CountableChain.from_elements(cpo, prefixes)
        chain_level = general.is_smooth_via(
            t, chain, upto=t.length()
        )
        return trace_level, chain_level

    def test_agree_on_smooth_solution(self):
        t = Trace.from_pairs([(B, 0), (C, 1), (D, 0), (D, 1)])
        a, b = self._both_verdicts(t)
        assert a and b

    def test_agree_on_non_solution(self):
        t = Trace.from_pairs([(D, 0)])
        a, b = self._both_verdicts(t)
        assert not a and not b

    def test_agree_exhaustively_small(self):
        import itertools

        from repro.channels.event import Event

        events = [Event(B, 0), Event(C, 1), Event(D, 0), Event(D, 1)]
        for n in range(4):
            for combo in itertools.product(events, repeat=n):
                t = Trace.finite(combo)
                a, b = self._both_verdicts(t)
                assert a == b, t


class TestOperationalCatalogAgreement:
    def test_finite_ticks_agent_produces_traces(self):
        process = finite_ticks.make()
        d = next(c for c in process.visible_channels)
        for seed in range(10):
            result = run_network(
                {"ft": finite_ticks_agent(d)}, [d],
                RandomOracle(seed), max_steps=200,
            )
            assert result.quiescent
            assert process.is_trace(result.trace, depth=48)

    def test_random_number_agent_produces_traces(self):
        process = random_number.make()
        d = next(c for c in process.visible_channels)
        for seed in range(10):
            result = run_network(
                {"rn": random_number_agent(d)}, [d],
                RandomOracle(seed), max_steps=400,
            )
            assert result.quiescent
            assert process.is_trace(result.trace, depth=64)


class TestReproducibility:
    def test_same_seed_same_trace(self):
        from repro.kahn.agents import dfm_agent, source_agent

        def agents():
            return {
                "eb": source_agent(B, [0, 2]),
                "ec": source_agent(C, [1, 3]),
                "dfm": dfm_agent(B, C, D),
            }

        first = run_network(agents(), [B, C, D],
                            RandomOracle(42), max_steps=100)
        second = run_network(agents(), [B, C, D],
                             RandomOracle(42), max_steps=100)
        assert first.trace == second.trace

    def test_different_seeds_vary(self):
        from repro.kahn.agents import dfm_agent, source_agent

        def agents():
            return {
                "eb": source_agent(B, [0, 2]),
                "ec": source_agent(C, [1, 3]),
                "dfm": dfm_agent(B, C, D),
            }

        traces = {
            run_network(agents(), [B, C, D], RandomOracle(seed),
                        max_steps=100).trace
            for seed in range(20)
        }
        assert len(traces) > 1


class TestTeeAgent:
    def test_duplicates_in_order(self):
        from repro.kahn.agents import source_agent

        src = Channel("src", alphabet={0, 1})
        out1 = Channel("o1", alphabet={0, 1})
        out2 = Channel("o2", alphabet={0, 1})
        result = run_network(
            {"env": source_agent(src, [0, 1]),
             "tee": tee_agent(src, [out1, out2])},
            [src, out1, out2], RandomOracle(0), max_steps=60,
        )
        assert result.quiescent
        assert result.trace.messages_on(out1).items == (0, 1)
        assert result.trace.messages_on(out2).items == (0, 1)
