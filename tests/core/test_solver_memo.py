"""Regression tests for the §3.3 solver's hot-path discipline.

The solver once evaluated ``g(u)`` (and the limit condition's side
values) several times per node: once inside ``limit_holds``, once to
expand the children, and once more for the frontier probe at the depth
bound.  These tests pin the fixed behaviour with an *instrumented
description* that counts every ``apply`` — per explored node the right
side must be evaluated exactly once and the limit condition checked
exactly once — and verify against a naive reference explorer (the old
algorithm, spelled out below) that the result digest is unchanged.
"""

from repro.channels.channel import Channel
from repro.core.description import Description, combine
from repro.core.solver import SmoothSolutionSolver, SolverResult
from repro.functions.base import chan
from repro.functions.seq_fns import even_of, odd_of
from repro.traces.trace import Trace

B = Channel("b", alphabet={0, 2})
C = Channel("c", alphabet={1, 3})
D = Channel("d", alphabet={0, 1, 2, 3})


class CountingFn:
    """Delegating wrapper that counts ``apply`` calls."""

    def __init__(self, inner):
        self.inner = inner
        self.calls = 0

    def __getattr__(self, attr):
        return getattr(self.inner, attr)

    def apply(self, t):
        self.calls += 1
        return self.inner.apply(t)


class CountingDescription(Description):
    """Counts limit-condition checks on top of the side counters."""

    def __init__(self, lhs, rhs, name=""):
        super().__init__(lhs, rhs, name=name)
        self.limit_calls = 0

    def limit_report(self, t, depth=64, lhs_value=None,
                     rhs_value=None):
        self.limit_calls += 1
        return super().limit_report(t, depth, lhs_value=lhs_value,
                                    rhs_value=rhs_value)


def counting_dfm():
    base = combine([
        Description(even_of(chan(D)), chan(B)),
        Description(odd_of(chan(D)), chan(C)),
    ], name="dfm")
    return CountingDescription(CountingFn(base.lhs),
                               CountingFn(base.rhs), name=base.name)


def naive_explore(solver: SmoothSolutionSolver,
                  max_depth: int) -> SolverResult:
    """The pre-memoization algorithm: ``limit_holds`` and
    ``children`` each re-evaluate the sides per node, and the frontier
    probe at the bound runs ``children`` once more."""
    desc = solver.description
    result = SolverResult(depth=max_depth)
    level = [Trace.empty()]
    explored = 0
    for depth in range(max_depth + 1):
        next_level = []
        for u in level:
            explored += 1
            limit = desc.limit_holds(u, solver.limit_depth)
            kids = (list(solver.children(u))
                    if depth < max_depth else None)
            if limit:
                result.finite_solutions.append(u)
            if kids is None:
                if any(True for _ in solver.children(u)):
                    result.frontier.append(u)
                elif not limit:
                    result.dead_ends.append(u)
                continue
            if not kids and not limit:
                result.dead_ends.append(u)
            next_level.extend(kids)
        level = next_level
        if not level:
            break
    result.nodes_explored = explored
    return result


class TestEvaluationCounts:
    def test_rhs_evaluated_exactly_once_per_node(self):
        desc = counting_dfm()
        solver = SmoothSolutionSolver.over_channels(desc, [B, C, D])
        result = solver.explore(4)
        assert desc.rhs.calls == result.nodes_explored

    def test_limit_condition_checked_exactly_once_per_node(self):
        desc = counting_dfm()
        solver = SmoothSolutionSolver.over_channels(desc, [B, C, D])
        result = solver.explore(4)
        assert desc.limit_calls == result.nodes_explored

    def test_limit_check_does_not_reapply_the_sides(self):
        # the limit condition consumes the values the exploration
        # already holds, so side evaluations are independent of how
        # limit_report is implemented
        desc = counting_dfm()
        solver = SmoothSolutionSolver.over_channels(desc, [B, C, D])
        solver.explore(3)
        lhs_calls, rhs_calls = desc.lhs.calls, desc.rhs.calls
        desc2 = counting_dfm()
        naive = SmoothSolutionSolver.over_channels(desc2, [B, C, D])
        naive_explore(naive, 3)
        assert lhs_calls < desc2.lhs.calls
        assert rhs_calls < desc2.rhs.calls

    def test_lhs_evaluated_once_per_proposed_candidate(self):
        # f(v) is computed when v is proposed and carried to v's own
        # exploration — so lhs calls = 1 (root) + one per candidate
        # proposal below the bound + short-circuited probes at it;
        # never more than the naive per-node recomputation
        desc = counting_dfm()
        solver = SmoothSolutionSolver.over_channels(desc, [B, C, D])
        result = solver.explore(4)
        assert desc.lhs.calls >= result.nodes_explored  # each was a candidate
        assert desc.rhs.calls == result.nodes_explored


class TestDigestUnchanged:
    def test_matches_naive_reference_at_every_depth(self):
        for depth in (0, 1, 2, 3, 4, 5):
            desc = counting_dfm()
            solver = SmoothSolutionSolver.over_channels(
                desc, [B, C, D])
            fast = solver.explore(depth)
            slow = naive_explore(solver, depth)
            assert fast.digest() == slow.digest(), f"depth {depth}"

    def test_matches_naive_reference_under_node_budget(self):
        desc = counting_dfm()
        solver = SmoothSolutionSolver.over_channels(desc, [B, C, D])
        fast = solver.explore(5, max_nodes=30)
        assert fast.truncated
        # the naive reference has no budget; agreement is on the sets
        # the truncated run did cover
        slow = naive_explore(solver, 5)
        assert set(map(repr, fast.finite_solutions)) <= set(
            map(repr, slow.finite_solutions))


class TestResumeEvaluationCounts:
    """The resume path must not re-do classified work.

    Witness replay (checkpoint loading) re-checks admissibility but
    never the limit condition, so across a truncated run plus its
    resumed continuation every node's limit condition is still checked
    *exactly once* — the same total as the straight run.
    """

    def test_limit_checked_once_per_node_across_resume(self):
        straight_desc = counting_dfm()
        straight = SmoothSolutionSolver.over_channels(
            straight_desc, [B, C, D]).explore(4)

        desc1 = counting_dfm()
        partial = SmoothSolutionSolver.over_channels(
            desc1, [B, C, D]).explore(4, max_nodes=40)
        assert partial.truncated
        desc2 = counting_dfm()
        resumed = SmoothSolutionSolver.over_channels(
            desc2, [B, C, D]).explore(
                4, resume_from=partial.checkpoint())

        assert resumed.digest() == straight.digest()
        total = desc1.limit_calls + desc2.limit_calls
        assert total == straight_desc.limit_calls
        assert total == straight.nodes_explored

    def test_rhs_evaluated_once_per_freshly_explored_node(self):
        # the resumed session evaluates g(u) once per node it actually
        # explores, plus once per carried classified trace it replays
        # as a witness path — never per (node × pass)
        partial_desc = counting_dfm()
        partial = SmoothSolutionSolver.over_channels(
            partial_desc, [B, C, D]).explore(4, max_nodes=40)
        desc = counting_dfm()
        resumed = SmoothSolutionSolver.over_channels(
            desc, [B, C, D]).explore(
                4, resume_from=partial.checkpoint())
        fresh_nodes = resumed.nodes_explored - partial.nodes_explored
        carried = (len(partial.finite_solutions)
                   + len(partial.frontier) + len(partial.dead_ends)
                   + len(partial.unvisited))
        replay_steps = sum(
            t.length() for bucket in (
                partial.finite_solutions, partial.frontier,
                partial.dead_ends, partial.unvisited)
            for t in bucket)
        # witness replay applies g once per step of each carried trace
        # (admissibility re-check) and f per proposed candidate; the
        # exploration itself then applies g once per fresh node
        assert desc.rhs.calls <= fresh_nodes + replay_steps + carried
        assert desc.limit_calls == fresh_nodes

    def test_cache_hit_skips_all_evaluation(self, tmp_path):
        from repro.cache.store import CacheStore

        store = CacheStore(tmp_path)
        warm_desc = counting_dfm()
        cold = SmoothSolutionSolver.over_channels(
            counting_dfm(), [B, C, D], cache=store).explore(4)
        warm = SmoothSolutionSolver.over_channels(
            warm_desc, [B, C, D],
            cache=CacheStore(tmp_path)).explore(4)
        assert warm.digest() == cold.digest()
        # serving from the store rebuilds traces by candidate
        # matching — no side evaluations, no limit checks
        assert warm_desc.limit_calls == 0
        assert warm_desc.rhs.calls == 0


class TestRhsGuidedCandidates:
    """The generator protocol extension of the memo discipline.

    ``rhs_guided_candidates`` needs ``g(u)`` to propose events;
    ``explore`` has already evaluated it for that exact node.  The
    generator publishes ``accepts_gu`` and receives the value, so the
    documented "g exactly once per node" bound holds for rhs-guided
    runs too (it used to double every ``rhs.apply``).
    """

    def guided_solver(self, desc):
        from repro.core.solver import rhs_guided_candidates

        return SmoothSolutionSolver(
            desc, rhs_guided_candidates([B, C, D], desc))

    def test_g_evaluated_exactly_once_per_node(self):
        desc = counting_dfm()
        result = self.guided_solver(desc).explore(3)
        assert desc.rhs.calls == result.nodes_explored

    def test_standalone_calls_still_work_without_gu(self):
        from repro.core.solver import rhs_guided_candidates

        desc = counting_dfm()
        gen = rhs_guided_candidates([B, C, D], desc)
        assert gen.accepts_gu
        before = desc.rhs.calls
        events = list(gen(Trace.empty()))
        assert desc.rhs.calls == before + 1  # computed its own g
        gu = desc.rhs.apply(Trace.empty())
        assert list(gen(Trace.empty(), gu)) == events

    def test_digest_unchanged_by_the_protocol(self):
        desc = counting_dfm()
        threaded = self.guided_solver(desc).explore(3)

        # a legacy-style generator without accepts_gu: same events,
        # own g evaluation per call
        from repro.core.solver import rhs_guided_candidates

        desc2 = counting_dfm()
        inner = rhs_guided_candidates([B, C, D], desc2)

        def legacy(u):
            return inner(u)

        legacy.cache_key = inner.cache_key
        unthreaded = SmoothSolutionSolver(desc2, legacy).explore(3)
        assert threaded.digest() == unthreaded.digest()
        assert desc.rhs.calls < desc2.rhs.calls


class TestLimitReportPrecomputed:
    def test_precomputed_values_match_fresh_evaluation(self):
        desc = counting_dfm()
        t = Trace.from_pairs([(B, 0), (D, 0)])
        fresh = desc.limit_report(t, 16)
        passed = desc.limit_report(
            t, 16, lhs_value=desc.lhs.apply(t),
            rhs_value=desc.rhs.apply(t))
        assert fresh.holds == passed.holds
        assert fresh.exact == passed.exact

    def test_precomputed_values_skip_reevaluation(self):
        desc = counting_dfm()
        t = Trace.from_pairs([(B, 0)])
        fu, gu = desc.lhs.apply(t), desc.rhs.apply(t)
        before = (desc.lhs.calls, desc.rhs.calls)
        desc.limit_report(t, 16, lhs_value=fu, rhs_value=gu)
        assert (desc.lhs.calls, desc.rhs.calls) == before

    def test_lazy_traces_ignore_precomputed_values(self):
        # for a lazy trace "the value of f(t)" is a chain limit, not
        # something a caller can hold — garbage kwargs must not leak in
        desc = counting_dfm()

        def gen():
            yield from Trace.from_pairs([(B, 0), (D, 0)])

        lazy = Trace.lazy(gen())
        report = desc.limit_report(lazy, 16, lhs_value="garbage",
                                   rhs_value="garbage")
        eager = counting_dfm().limit_report(
            Trace.from_pairs([(B, 0), (D, 0)]), 16)
        assert report.holds == eager.holds
