"""The search-strategy layer: every exploration order, same answers.

Strategies *reorder* the §3.3 exploration — they never change which
nodes are admissible, how a node classifies, or what the solution set
is.  These tests pin that contract deterministically (the hypothesis
sweep lives in ``tests/properties/test_strategy_equivalence.py``):

* best-first and iterative-deepening match the BFS digest on both
  engines, with and without duplicate-state reduction;
* dedup never drops a solution (on/off digest equality) while
  measurably sharing evaluation work on converging traces;
* the satellite bugfixes stay fixed — stable alphabet ordering with a
  loud rejection of repr-less messages, and ``_dedup`` keeping
  ``True``/``1``/``1.0`` apart.
"""

import pytest

from repro.channels.channel import Channel
from repro.core.description import Description, combine
from repro.core.search import get_heuristic, rhs_distance
from repro.core.solver import (
    SmoothSolutionSolver,
    _dedup,
    alphabet_candidates,
)
from repro.functions.base import chan
from repro.functions.seq_fns import even_of, odd_of

B = Channel("b", alphabet={0, 2})
C = Channel("c", alphabet={1, 3})
D = Channel("d", alphabet={0, 1, 2, 3})

STRATEGIES = ("bfs", "best-first", "iterative-deepening")
HEURISTICS = ("depth", "rhs-distance", "channel-balance")


def dfm():
    return combine([
        Description(even_of(chan(D)), chan(B)),
        Description(odd_of(chan(D)), chan(C)),
    ], name="dfm")


def dfm_solver(**kwargs) -> SmoothSolutionSolver:
    return SmoothSolutionSolver.over_channels(dfm(), [B, C, D],
                                              **kwargs)


class TestCrossStrategyDigests:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("compiled", [False, None])
    def test_digest_equals_bfs_at_every_depth(self, strategy,
                                              compiled):
        for depth in (0, 1, 2, 3, 4):
            base = dfm_solver().explore(depth)
            got = dfm_solver(strategy=strategy,
                             compiled=compiled).explore(depth)
            assert got.digest() == base.digest(), f"depth {depth}"
            assert got.nodes_explored == base.nodes_explored

    @pytest.mark.parametrize("heuristic", HEURISTICS)
    def test_every_heuristic_finds_the_same_solutions(self, heuristic):
        base = dfm_solver().explore(4)
        for compiled in (False, None):
            got = dfm_solver(strategy="best-first",
                             heuristic=heuristic,
                             compiled=compiled).explore(4)
            assert got.digest() == base.digest(), heuristic

    @pytest.mark.parametrize("compiled", [False, None])
    def test_truncated_best_first_identical_across_engines(
            self, compiled):
        # rank features are engine-neutral integers, so even the
        # *parked* sets agree — not just completed runs
        ref = dfm_solver(strategy="best-first",
                         compiled=False).explore(4, max_nodes=60)
        other = dfm_solver(strategy="best-first",
                           compiled=compiled).explore(4, max_nodes=60)
        assert ref.truncated and other.truncated
        assert other.digest() == ref.digest()

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            dfm_solver(strategy="depth-first")

    def test_unknown_heuristic_rejected(self):
        with pytest.raises(ValueError, match="heuristic"):
            dfm_solver(heuristic="oracle")


class TestDuplicateStateReduction:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("compiled", [False, None])
    def test_dedup_never_drops_a_solution(self, strategy, compiled):
        # dfm is all converging traces: (b,0)(d,0) and (d,0)(b,0)
        # share a projection, so the memo is heavily exercised
        base = dfm_solver().explore(4)
        got = dfm_solver(strategy=strategy, compiled=compiled,
                         dedup=True).explore(4)
        assert got.digest() == base.digest()
        assert got.nodes_explored == base.nodes_explored

    def test_dedup_shares_work_on_converging_traces(self):
        from repro.obs import RingBufferSink, Tracer

        tracer = Tracer([RingBufferSink(capacity=100_000)])
        result = dfm_solver(strategy="best-first", dedup=True,
                            compiled=False,
                            tracer=tracer).explore(4)
        counters = result.profile["counters"]
        # 697 nodes at depth 4 collapse onto far fewer projections
        assert counters["dedup.hits"] > result.nodes_explored / 2
        assert counters["dedup.states"] < result.nodes_explored

    def test_dedup_requires_projection_factored_sides(self):
        # a Description subclass could inspect whole traces — the
        # projection key would be unsound, so the solver must refuse
        class Opaque(Description):
            pass

        desc = dfm()
        opaque = Opaque(desc.lhs, desc.rhs, name="opaque")
        solver = SmoothSolutionSolver.over_channels(
            opaque, [B, C, D], compiled=False, dedup=True)
        with pytest.raises(ValueError, match="dedup"):
            solver.explore(3)

    def test_strategy_counters_exposed(self):
        from repro.obs import RingBufferSink, Tracer

        tracer = Tracer([RingBufferSink(capacity=100_000)])
        result = dfm_solver(strategy="best-first",
                            tracer=tracer).explore(3)
        counters = result.profile["counters"]
        assert counters["strategy.best-first.popped"] == \
            result.nodes_explored
        assert counters["strategy.best-first.pushed"] >= \
            result.nodes_explored


class TestDeepeningCheckpointGuard:
    def test_deepening_checkpoint_needs_deepening_resume(self):
        partial = dfm_solver(
            strategy="iterative-deepening").explore(4, max_nodes=50)
        assert partial.truncated
        ckpt = partial.checkpoint()
        with pytest.raises(ValueError, match="iterative-deepening"):
            dfm_solver().explore(4, resume_from=ckpt)

    def test_bfs_checkpoint_resumable_by_any_strategy(self):
        straight = dfm_solver().explore(4)
        partial = dfm_solver().explore(4, max_nodes=50)
        for strategy in STRATEGIES:
            resumed = dfm_solver(strategy=strategy).explore(
                4, resume_from=partial.checkpoint())
            assert resumed.digest() == straight.digest(), strategy


class TestStableAlphabetOrdering:
    def test_historical_int_order_preserved(self):
        # the (type name, repr) key must not reorder existing
        # all-int alphabets — committed digests depend on it
        candidates = alphabet_candidates([B, C, D])
        messages = [e.message for e in candidates.constant_events
                    if e.channel.name == "d"]
        assert messages == [0, 1, 2, 3]

    def test_repr_less_messages_rejected(self):
        class Token:  # inherits object.__repr__: address-dependent
            pass

        ch = Channel("t", alphabet={Token(), Token()})
        with pytest.raises(ValueError, match="deterministic repr"):
            alphabet_candidates([ch])

    def test_mixed_type_alphabet_orders_by_type_then_repr(self):
        ch = Channel("m", alphabet={2, "a", 1, "b"})
        candidates = alphabet_candidates([ch])
        assert [e.message for e in candidates.constant_events] == \
            [1, 2, "a", "b"]


class TestMessageDedup:
    def test_equal_but_distinct_types_survive(self):
        assert _dedup([True, 1, 1.0]) == [True, 1, 1.0]

    def test_same_type_duplicates_collapse(self):
        assert _dedup([1, 2, 1, 2, 3]) == [1, 2, 3]

    def test_unhashable_fallback_respects_types(self):
        a, b = [1], (1,)

        class L(list):
            pass

        assert _dedup([a, b, L([1]), [1]]) == [a, b, L([1])]


class TestHeuristicFeatures:
    def test_rhs_distance_zero_iff_lengths_match(self):
        assert rhs_distance((2, 3), (2, 3)) == 0
        assert rhs_distance((2,), (2, 3)) == 3
        assert rhs_distance((5,), (2,)) == 3

    def test_heuristic_lookup(self):
        assert get_heuristic("depth").name == "depth"
        with pytest.raises(ValueError, match="unknown heuristic"):
            get_heuristic("nope")
