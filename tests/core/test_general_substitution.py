"""The §7 closing note: general substitution ``p ⟵ h``, p surjective.

Concrete instance: the Brock–Ackermann-style description pair

    odd(b) ⟵ ⟨1⟩ ,   c ⟵ 9; odd(b)

``p = odd(b)`` depends only on ``b`` and is surjective onto odd-integer
sequences; replacing the *term* ``odd(b)`` by its definition yields
``c ⟵ 9;⟨1⟩`` and drops ``b``.
"""

import pytest

from repro.channels.channel import Channel
from repro.core.description import Description, DescriptionSystem
from repro.core.elimination import EliminationError, eliminate_term
from repro.functions.base import chan, const_seq
from repro.functions.seq_fns import odd_of, prepend_of
from repro.seq.finite import fseq
from repro.traces.trace import Trace

B = Channel("b", alphabet={1, 2, 3})
C = Channel("c", alphabet={1, 9})


def system():
    defining = Description(odd_of(chan(B)),
                           const_seq(fseq(1), name="⟨1⟩"),
                           name="odd(b) ⟵ ⟨1⟩")
    user = Description(chan(C), prepend_of(9, odd_of(chan(B))),
                       name="c ⟵ 9;odd(b)")
    return defining, DescriptionSystem([defining, user],
                                       channels=[B, C])


class TestEliminateTerm:
    def test_substitution_result(self):
        defining, d1 = system()
        d2 = eliminate_term(d1, defining, B, surjective=True)
        assert len(d2) == 1
        value = d2.descriptions[0].rhs.apply(Trace.empty())
        assert value.take(5) == fseq(9, 1)
        assert B not in d2.channels

    def test_solution_preservation_on_samples(self):
        defining, d1 = system()
        d2 = eliminate_term(d1, defining, B, surjective=True)
        # D1's smooth solutions project to D2 smooth solutions
        t = Trace.from_pairs([(B, 1), (C, 9), (C, 1)])
        if d1.is_smooth_solution(t):
            assert d2.is_smooth_solution(t.project(frozenset({C})))

    def test_surjectivity_must_be_asserted(self):
        defining, d1 = system()
        with pytest.raises(EliminationError):
            eliminate_term(d1, defining, B)

    def test_p_must_depend_only_on_b(self):
        bad_defining = Description(
            odd_of(chan(C)), const_seq(fseq(1)), name="odd(c) ⟵ ⟨1⟩"
        )
        user = Description(chan(C), const_seq(fseq(9)))
        d1 = DescriptionSystem([bad_defining, user],
                               channels=[B, C])
        with pytest.raises(EliminationError):
            eliminate_term(d1, bad_defining, B, surjective=True)

    def test_leak_outside_term_detected(self):
        # a retained description mentioning b directly (not via p)
        defining = Description(odd_of(chan(B)), const_seq(fseq(1)))
        leaky = Description(chan(C), prepend_of(9, chan(B)),
                            name="c ⟵ 9;b")
        d1 = DescriptionSystem([defining, leaky], channels=[B, C])
        with pytest.raises(EliminationError):
            eliminate_term(d1, defining, B, surjective=True)

    def test_defining_must_be_member(self):
        defining, d1 = system()
        foreign = Description(odd_of(chan(B)), const_seq(fseq(3)))
        with pytest.raises(EliminationError):
            eliminate_term(d1, foreign, B, surjective=True)

    def test_h_independent_of_b_required(self):
        defining = Description(odd_of(chan(B)),
                               prepend_of(1, chan(B)),
                               name="odd(b) ⟵ 1;b")
        user = Description(chan(C), prepend_of(9, odd_of(chan(B))))
        d1 = DescriptionSystem([defining, user], channels=[B, C])
        with pytest.raises(EliminationError):
            eliminate_term(d1, defining, B, surjective=True)
