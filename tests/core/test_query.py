"""The query layer: prune instead of enumerating, agree regardless.

A query's early exit only changes *when* the search stops, never which
nodes are finite smooth solutions — so on every case the enumerating
solver completes, ``exists``/``all`` answers must equal
enumerate-then-filter.  That agreement, the witness certificates, the
node savings the layer exists for, and the textual predicate
mini-language are pinned here.
"""

import pytest

from repro.channels.channel import Channel
from repro.core.description import Description, combine
from repro.core.search import parse_predicate
from repro.core.solver import SmoothSolutionSolver, solve_query
from repro.functions.base import chan
from repro.functions.seq_fns import even_of, odd_of
from repro.traces.trace import Trace

B = Channel("b", alphabet={0, 2})
C = Channel("c", alphabet={1, 3})
D = Channel("d", alphabet={0, 1, 2, 3})


def dfm():
    return combine([
        Description(even_of(chan(D)), chan(B)),
        Description(odd_of(chan(D)), chan(C)),
    ], name="dfm")


def dfm_solver(**kwargs) -> SmoothSolutionSolver:
    return SmoothSolutionSolver.over_channels(dfm(), [B, C, D],
                                              **kwargs)


PREDICATES = ("true", "length >= 2", "on:b >= 1", "on:c == 0",
              "msg:d:3", "length >= 99", "on:b >= 1, on:c >= 1")


class TestAgreesWithEnumerateThenFilter:
    @pytest.mark.parametrize("text", PREDICATES)
    @pytest.mark.parametrize("mode", ["exists", "all"])
    def test_query_equals_filtering_the_enumeration(self, text, mode):
        enumerated = dfm_solver().explore(4)
        assert not enumerated.truncated
        pred = parse_predicate(text)
        matching = [t for t in enumerated.finite_solutions if pred(t)]
        expected = (bool(matching) if mode == "exists"
                    else len(matching)
                    == len(enumerated.finite_solutions))

        for strategy in ("bfs", "best-first", "iterative-deepening"):
            for compiled in (False, None):
                answer = dfm_solver(
                    strategy=strategy,
                    compiled=compiled).query(text, 4, mode=mode)
                assert answer.holds is expected, \
                    (text, mode, strategy, compiled)

    def test_witness_satisfies_the_predicate(self):
        answer = dfm_solver(strategy="best-first").query(
            "on:b >= 1", 4)
        assert answer.holds is True
        assert parse_predicate("on:b >= 1")(answer.witness)

    def test_counterexample_violates_the_predicate(self):
        answer = dfm_solver(strategy="best-first").query(
            "on:b >= 1", 4, mode="all")
        # ε is a smooth solution with no b events
        assert answer.holds is False
        assert not parse_predicate("on:b >= 1")(answer.witness)


class TestCertificates:
    def test_witness_certificate_replays(self):
        solver = dfm_solver(strategy="best-first")
        answer = solver.query("on:b >= 2, length >= 4", 5)
        assert answer.holds is True
        replayed = dfm_solver().replay_witness(answer.certificate)
        assert replayed == answer.witness

    def test_negative_exists_has_no_certificate(self):
        answer = dfm_solver().query("length >= 99", 3)
        assert answer.holds is False
        assert answer.certificate is None
        assert answer.witness is None


class TestPruning:
    def test_exists_expands_fewer_nodes_than_solve(self):
        full = dfm_solver().explore(5)
        answer = dfm_solver(strategy="best-first").query(
            "on:b >= 1", 5)
        assert answer.holds is True
        assert answer.nodes_explored < full.nodes_explored / 10
        assert answer.meta["short_circuited"]

    def test_query_answers_where_solve_truncates(self):
        # the acceptance bar: same node budget, query settles while
        # plain enumeration gives up
        budget = 500
        truncated = dfm_solver().explore(6, max_nodes=budget)
        assert truncated.truncated
        answer = dfm_solver(strategy="best-first").query(
            "on:b >= 2", 6, max_nodes=budget)
        assert answer.holds is True

    def test_unresolved_on_tiny_budget(self):
        answer = dfm_solver(strategy="best-first").query(
            "length >= 99", 5, max_nodes=10)
        assert answer.holds is None
        assert not answer.resolved
        assert answer.witness is None
        assert "unresolved" in answer.describe()

    def test_query_results_never_cached(self, tmp_path):
        from repro.cache.store import CacheStore

        store = CacheStore(tmp_path)
        solver = dfm_solver(strategy="best-first", cache=store)
        answer = solver.query("on:b >= 1", 4)
        assert answer.result.truncation_reason.startswith("query")
        # the early-exited exploration must not poison the store: a
        # fresh solve with the same budgets sees a miss, not a
        # truncated pseudo-result
        fresh = dfm_solver(strategy="best-first",
                           cache=CacheStore(tmp_path)).explore(4)
        assert not fresh.truncated
        assert fresh.digest() == dfm_solver().explore(4).digest()

    def test_query_on_cached_complete_run_still_answers(self,
                                                        tmp_path):
        from repro.cache.store import CacheStore

        store = CacheStore(tmp_path)
        dfm_solver(cache=store).explore(4)  # warm the store
        answer = dfm_solver(cache=CacheStore(tmp_path)).query(
            "on:b >= 1", 4)
        # served from cache: the watch never ran, the answer is
        # settled from the enumerated solutions
        assert answer.holds is True
        assert answer.witness is not None


class TestPredicateLanguage:
    def test_clauses(self):
        t = Trace.from_pairs([(B, 0), (D, 0), (C, 1)])
        cases = [
            ("true", True),
            ("length == 3", True),
            ("length < 3", False),
            ("on:b >= 1", True),
            ("on:c != 0", True),
            ("on:d = 1", True),
            ("msg:d:0", True),
            ("msg:d:7", False),
            ("on:b >= 1, length <= 2", False),
        ]
        for text, expected in cases:
            assert parse_predicate(text)(t) is expected, text

    def test_source_attribute_round_trips(self):
        pred = parse_predicate(" on:b >= 1 ,  length <= 4 ")
        assert pred.source == "on:b >= 1, length <= 4"

    @pytest.mark.parametrize("junk", [
        "", "   ", "garbage", "length >>= 3", "length <= x",
        "msg:", "msg:d", "on: >= 1",
    ])
    def test_junk_rejected_with_grammar(self, junk):
        with pytest.raises(ValueError, match="clause|predicate"):
            parse_predicate(junk)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            dfm_solver().query("true", 3, mode="some")

    def test_callable_predicates_accepted(self):
        answer = dfm_solver().query(
            lambda t: t.length() == 0, 3)
        assert answer.holds is True
        assert answer.witness == Trace.empty()


class TestModuleLevelHelper:
    def test_solve_query_defaults_to_best_first(self):
        answer = solve_query(dfm(), [B, C, D], "on:b >= 1", 4)
        assert answer.holds is True
        assert answer.strategy == "best-first"
