"""Unit tests for repro.core.induction — §8.4's rule, incl. its
(paper-acknowledged) incompleteness."""

from repro.channels.channel import Channel
from repro.core.description import Description, combine
from repro.core.induction import (
    check_premises_on_tree,
    conclude,
    holds_on_prefixes,
)
from repro.core.solver import SmoothSolutionSolver
from repro.functions.base import chan, const_seq
from repro.functions.seq_fns import even_of, odd_of, prepend_of
from repro.seq.finite import fseq
from repro.traces.trace import Trace

B = Channel("b", alphabet={0, 2})
C = Channel("c", alphabet={1, 3})
D = Channel("d", alphabet={0, 1, 2, 3})


def dfm():
    return combine([
        Description(even_of(chan(D)), chan(B)),
        Description(odd_of(chan(D)), chan(C)),
    ], name="dfm")


def outputs_justified(t: Trace) -> bool:
    """Safety: every output on d was previously received on b or c."""
    from repro.seq.combinators import is_subsequence

    d_msgs = t.messages_on(D)
    inputs = [e.message for e in t if e.channel in (B, C)]
    # multiset containment with order irrelevant
    pool = list(inputs)
    for m in d_msgs:
        if m in pool:
            pool.remove(m)
        else:
            return False
    return True


class TestPremises:
    def test_safety_property_premises_hold(self):
        solver = SmoothSolutionSolver.over_channels(dfm(), [B, C, D])
        report = check_premises_on_tree(
            solver, outputs_justified, max_depth=4
        )
        assert report.premises_hold
        assert report.edges_checked > 0

    def test_false_base_detected(self):
        solver = SmoothSolutionSolver.over_channels(dfm(), [B, C, D])
        report = check_premises_on_tree(
            solver, lambda t: t.length() > 0, max_depth=2
        )
        assert not report.base_holds

    def test_non_invariant_detected(self):
        # "no outputs yet" fails on edges that emit output
        solver = SmoothSolutionSolver.over_channels(dfm(), [B, C, D])
        report = check_premises_on_tree(
            solver, lambda t: t.count_on(D) == 0, max_depth=3
        )
        assert report.step_failures
        failure = report.step_failures[0]
        assert failure.v.count_on(D) == 1


class TestConclusion:
    def test_rule_applies_to_smooth_solution(self):
        desc = dfm()
        solver = SmoothSolutionSolver.over_channels(desc, [B, C, D])
        report = check_premises_on_tree(
            solver, outputs_justified, max_depth=4
        )
        solution = Trace.from_pairs([(B, 0), (C, 1), (D, 1), (D, 0)])
        assert conclude(report, desc, solution)
        assert holds_on_prefixes(outputs_justified, solution, 10)

    def test_no_conclusion_for_non_solution(self):
        desc = dfm()
        solver = SmoothSolutionSolver.over_channels(desc, [B, C, D])
        report = check_premises_on_tree(
            solver, outputs_justified, max_depth=4
        )
        assert not conclude(report, desc,
                            Trace.from_pairs([(D, 0)]))


class TestIncompleteness:
    def test_rule_cannot_use_limit_condition(self):
        """Trakhtenbrot's observation (§8.4): the rule ignores the
        limit condition, so a property that holds of every smooth
        solution *because of the limit condition* has failing premises.

        For b ⟵ ⟨0⟩ (alphabet {0}), every smooth solution is exactly
        ⟨(b,0)⟩ — so φ = "length ≠ 0 ⇒ true, but specifically: t is
        not ⊥" holds of all smooth solutions (⊥ is not a solution:
        ε ≠ ⟨0⟩).  Yet φ(⊥) — the base premise — is false, so the rule
        cannot derive φ even though it is true of every solution."""
        bz = Channel("bz", alphabet={0})
        desc = Description(chan(bz), const_seq(fseq(0)))
        solver = SmoothSolutionSolver.over_channels(desc, [bz])

        phi = lambda t: t.length() > 0  # true of every smooth solution
        # every smooth solution satisfies phi:
        result = solver.explore(3)
        assert result.finite_solutions == [
            Trace.from_pairs([(bz, 0)])
        ]
        assert all(phi(s) for s in result.finite_solutions)
        # but the rule's base premise fails:
        report = check_premises_on_tree(solver, phi, max_depth=3)
        assert not report.premises_hold
