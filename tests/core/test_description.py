"""Unit tests for repro.core.description — the paper's §3.2."""

import itertools

import pytest

from repro.channels.channel import Channel
from repro.core.description import (
    Description,
    DescriptionSystem,
    combine,
)
from repro.functions.base import chan, const_seq
from repro.functions.seq_fns import even_of, odd_of, prepend_of
from repro.seq.finite import fseq
from repro.traces.trace import Trace

B = Channel("b", alphabet={0, 2})
C = Channel("c", alphabet={1, 3})
D = Channel("d", alphabet={0, 1, 2, 3})


def t_of(*pairs):
    return Trace.from_pairs(pairs)


def dfm_description():
    return combine([
        Description(even_of(chan(D)), chan(B)),
        Description(odd_of(chan(D)), chan(C)),
    ], name="dfm")


class TestLimitCondition:
    def test_holds_on_quiescent_trace(self):
        assert dfm_description().limit_holds(t_of((B, 0), (D, 0)))

    def test_fails_on_pending_input(self):
        assert not dfm_description().limit_holds(t_of((B, 0)))

    def test_report_exactness(self):
        report = dfm_description().limit_report(t_of((B, 0), (D, 0)))
        assert report.holds and report.exact

    def test_report_bounded_for_lazy(self):
        t = Trace.cycle_pairs([(B, 0), (D, 0)])
        report = dfm_description().limit_report(t, depth=20)
        assert report.holds and not report.exact


class TestSmoothnessCondition:
    def test_output_needs_prior_input(self):
        # (d,0) with no input on b: violates f(v) ⊑ g(u) at u = ⊥
        violations = dfm_description().smoothness_violations(
            t_of((D, 0))
        )
        assert len(violations) == 1
        assert violations[0].u.length() == 0

    def test_input_first_is_smooth(self):
        assert dfm_description().smoothness_holds(
            t_of((B, 0), (D, 0))
        )

    def test_violation_records_values(self):
        v = dfm_description().smoothness_violations(t_of((D, 0)))[0]
        assert v.lhs_of_v[0].take(5) == fseq(0)
        assert "⋢" in str(v)


class TestSmoothSolutions:
    def test_paper_examples_positive(self):
        # §3.1.1 example 1's quiescent traces
        desc = dfm_description()
        assert desc.is_smooth_solution(Trace.empty())
        assert desc.is_smooth_solution(t_of((B, 0), (D, 0)))
        assert desc.is_smooth_solution(
            t_of((B, 0), (C, 1), (C, 3), (D, 1), (D, 3), (D, 0))
        )

    def test_paper_examples_negative(self):
        desc = dfm_description()
        assert not desc.is_smooth_solution(t_of((B, 0)))
        assert not desc.is_smooth_solution(
            t_of((B, 0), (D, 0), (C, 1))
        )

    def test_infinite_periodic_solution(self):
        t = Trace.cycle_pairs([(B, 0), (D, 0)])
        assert dfm_description().is_smooth_solution(t, depth=24)

    def test_verdict_fields(self):
        verdict = dfm_description().check(t_of((B, 0), (D, 0)))
        assert verdict.is_smooth and verdict.is_solution
        assert verdict.exact
        assert verdict.first_violation is None


class TestLemma2:
    def test_holds_on_smooth_solutions(self):
        desc = dfm_description()
        solution = t_of((B, 0), (C, 1), (D, 0), (D, 1))
        assert desc.is_smooth_solution(solution)
        assert desc.lemma2_holds(solution)

    def test_exhaustive_lemma2(self):
        # on every smooth solution over a small universe, f(s) ⊑ g(s)
        # holds for every finite prefix s — Lemma 2
        desc = dfm_description()
        events = [(B, 0), (C, 1), (D, 0), (D, 1)]
        for n in range(4):
            for combo in itertools.product(events, repeat=n):
                t = t_of(*combo)
                if desc.is_smooth_solution(t):
                    assert desc.lemma2_holds(t)


class TestTheorem1:
    def test_dfm_sides_are_independent(self):
        assert dfm_description().independent()

    def test_equivalence_on_independent_description(self):
        # Theorem 1: for independent sides the two characterizations
        # agree on every finite trace
        desc = dfm_description()
        events = [(B, 0), (C, 1), (D, 0), (D, 1)]
        for n in range(4):
            for combo in itertools.product(events, repeat=n):
                t = t_of(*combo)
                assert desc.is_smooth_solution(t) == \
                    desc.is_smooth_solution_thm1(t)

    def test_dependent_description_rejected(self):
        # the §2.3 network description names d on both sides
        desc = Description(even_of(chan(D)),
                           prepend_of(0, chan(D)))
        assert not desc.independent()
        with pytest.raises(ValueError):
            desc.is_smooth_solution_thm1(Trace.empty())


class TestCombination:
    def test_single_combination_is_identity(self):
        d = Description(chan(B), const_seq(fseq(0)))
        assert combine([d]) is d

    def test_empty_combination_rejected(self):
        with pytest.raises(ValueError):
            combine([])

    def test_combined_is_conjunction(self):
        # a trace smooth for the combination iff smooth for both parts
        d1 = Description(even_of(chan(D)), chan(B))
        d2 = Description(odd_of(chan(D)), chan(C))
        both = combine([d1, d2])
        events = [(B, 0), (C, 1), (D, 0), (D, 1)]
        for n in range(3):
            for combo in itertools.product(events, repeat=n):
                t = t_of(*combo)
                assert both.is_smooth_solution(t) == (
                    d1.is_smooth_solution(t)
                    and d2.is_smooth_solution(t)
                )


class TestDescriptionSystem:
    def test_combined(self):
        system = DescriptionSystem(
            [
                Description(even_of(chan(D)), chan(B)),
                Description(odd_of(chan(D)), chan(C)),
            ],
            channels=[B, C, D],
        )
        assert system.is_smooth_solution(t_of((B, 0), (D, 0)))
        assert len(system) == 2

    def test_empty_system_rejected(self):
        with pytest.raises(ValueError):
            DescriptionSystem([], channels=[B])

    def test_satisfied_by_env(self):
        system = DescriptionSystem(
            [
                Description(even_of(chan(D)), chan(B)),
                Description(odd_of(chan(D)), chan(C)),
            ],
            channels=[B, C, D],
        )
        good = {B: fseq(0), C: fseq(1), D: fseq(0, 1)}
        bad = {B: fseq(0), C: fseq(1), D: fseq(1, 0, 2)}
        assert system.satisfied_by_env(good)
        assert not system.satisfied_by_env(bad)


class TestSupportAndDc:
    def test_support_union(self):
        desc = Description(even_of(chan(D)), chan(B))
        assert desc.support() == frozenset({B, D})

    def test_satisfies_dc(self):
        desc = Description(even_of(chan(D)), chan(B))
        assert desc.satisfies_dc(frozenset({B, D}))
        assert not desc.satisfies_dc(frozenset({B}))

    def test_substitute(self):
        desc = Description(chan(C), prepend_of(0, chan(B)))
        desc2 = desc.substitute(B, const_seq(fseq(2)))
        assert desc2.rhs.apply(Trace.empty()).take(5) == fseq(0, 2)
