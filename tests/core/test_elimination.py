"""Unit tests for repro.core.elimination — Theorems 5/6 (§7)."""

import itertools

import pytest

from repro.channels.channel import Channel
from repro.core.description import Description, DescriptionSystem
from repro.core.elimination import (
    EliminationError,
    check_conditions,
    defining_description,
    eliminate_channel,
    eliminate_channels,
    theorem5_holds,
    theorem6_holds,
    theorem6_witness,
)
from repro.functions.base import chan, const_seq
from repro.functions.seq_fns import even_of, prepend_of, scale_of
from repro.seq.finite import fseq
from repro.traces.trace import Trace

B = Channel("b", alphabet={0, 2})
C = Channel("c", alphabet={0, 2})
D = Channel("d", alphabet={0, 2})


def simple_system():
    """D1: b ⟵ ⟨0⟩ , c ⟵ 0;b   (h const, g mentions b)."""
    return DescriptionSystem(
        [
            Description(chan(B), const_seq(fseq(0), name="⟨0⟩")),
            Description(chan(C), prepend_of(0, chan(B))),
        ],
        channels=[B, C],
        name="D1",
    )


class TestDefiningDescription:
    def test_found(self):
        d = defining_description(simple_system(), B)
        assert d.rhs.apply(Trace.empty()) == fseq(0)

    def test_missing(self):
        with pytest.raises(EliminationError):
            defining_description(simple_system(), D)

    def test_duplicate(self):
        system = DescriptionSystem(
            [
                Description(chan(B), const_seq(fseq(0))),
                Description(chan(B), const_seq(fseq(2))),
            ],
            channels=[B],
        )
        with pytest.raises(EliminationError):
            defining_description(system, B)


class TestConditions:
    def test_good_system(self):
        report = check_conditions(simple_system(), B)
        assert report.sound

    def test_h_depends_on_b(self):
        system = DescriptionSystem(
            [
                Description(chan(B), prepend_of(0, chan(B))),
                Description(chan(C), chan(B)),
            ],
            channels=[B, C],
        )
        report = check_conditions(system, B)
        assert not report.h_independent
        with pytest.raises(EliminationError):
            eliminate_channel(system, B)

    def test_f_bottom_not_bottom(self):
        # the paper's counterexample needs f(⊥) ≠ ⊥; a constant left
        # side provides one
        system = DescriptionSystem(
            [
                Description(chan(B), const_seq(fseq(0))),
                Description(const_seq(fseq(9), name="⟨9⟩"),
                            chan(B)),
            ],
            channels=[B, C],
        )
        report = check_conditions(system, B)
        assert not report.f_bottom_is_bottom


class TestEliminate:
    def test_substitution_applied(self):
        d2 = eliminate_channel(simple_system(), B)
        assert len(d2) == 1
        # c ⟵ 0;⟨0⟩ = ⟨0 0⟩
        got = d2.descriptions[0].rhs.apply(Trace.empty())
        assert got.take(5) == fseq(0, 0)

    def test_channel_removed(self):
        d2 = eliminate_channel(simple_system(), B)
        assert B not in d2.channels

    def test_cannot_empty_the_system(self):
        system = DescriptionSystem(
            [Description(chan(B), const_seq(fseq(0)))], channels=[B]
        )
        with pytest.raises(EliminationError):
            eliminate_channel(system, B)

    def test_eliminate_many(self):
        # b ⟵ ⟨0⟩, c ⟵ b, d ⟵ c: eliminate b then c
        system = DescriptionSystem(
            [
                Description(chan(B), const_seq(fseq(0))),
                Description(chan(C), chan(B)),
                Description(chan(D), chan(C)),
            ],
            channels=[B, C, D],
        )
        d2 = eliminate_channels(system, [B, C])
        assert len(d2) == 1
        assert d2.descriptions[0].rhs.apply(Trace.empty()) == fseq(0)

    def test_enforce_false_builds_anyway(self):
        system = DescriptionSystem(
            [
                Description(chan(B), const_seq(fseq(0))),
                Description(const_seq(fseq(9)), chan(B)),
            ],
            channels=[B, C],
        )
        d2 = eliminate_channel(system, B, enforce=False)
        assert len(d2) == 1


class TestTheorem5:
    def test_on_all_small_traces(self):
        system = simple_system()
        from repro.channels.event import Event

        events = [Event(B, 0), Event(B, 2), Event(C, 0), Event(C, 2)]
        for n in range(4):
            for combo in itertools.product(events, repeat=n):
                t = Trace.finite(combo)
                assert theorem5_holds(system, B, t)


class TestTheorem6:
    def test_witness_projects_to_s(self):
        system = simple_system()
        # s over {c}: smooth solution of D2 is ⟨(c,0)(c,0)⟩
        s = Trace.from_pairs([(C, 0), (C, 0)])
        d2 = eliminate_channel(system, B)
        assert d2.is_smooth_solution(s)
        t = theorem6_witness(system, B, s)
        proj = t.take(50).project(frozenset({C}))
        assert proj == s

    def test_witness_is_smooth_for_d1(self):
        system = simple_system()
        s = Trace.from_pairs([(C, 0), (C, 0)])
        assert theorem6_holds(system, B, s)

    def test_vacuous_when_s_not_smooth(self):
        system = simple_system()
        s = Trace.from_pairs([(C, 2)])
        assert theorem6_holds(system, B, s)  # hypothesis fails

    def test_infinite_s(self):
        # b ⟵ ⟨0⟩, c ⟵ 0;c: D2 is c ⟵ 0;c (ticks-like); witness for
        # the infinite s must interleave the single b event
        system = DescriptionSystem(
            [
                Description(chan(B), const_seq(fseq(0))),
                Description(chan(C), prepend_of(0, chan(C))),
            ],
            channels=[B, C],
        )
        s = Trace.cycle_pairs([(C, 0)])
        t = theorem6_witness(system, B, s)
        assert t.take(3).count_on(B) >= 1
        assert system.is_smooth_solution(t, depth=16)


class TestPaperCounterexamples:
    def test_f_bottom_condition_note(self):
        """§7's note: D1 = (b ⟵ f, f ⟵ b) with f(⊥) ≠ ⊥ has no smooth
        solution though D2 = (f ⟵ f) has one (⊥)."""
        f = const_seq(fseq(9), name="⟨9⟩")
        d1 = DescriptionSystem(
            [
                Description(chan(B), f),        # b ⟵ f
                Description(f, chan(B)),        # f ⟵ b
            ],
            channels=[B],
            name="note-D1",
        )
        # ⊥ fails the limit condition of the second description
        assert not d1.is_smooth_solution(Trace.empty())
        # any nonempty trace fails smoothness of f ⟵ b at its first
        # step: f(v) = ⟨9⟩ ⋢ b(⊥) = ε
        assert not d1.is_smooth_solution(Trace.from_pairs([(B, 0)]))
        # yet D2 = f ⟵ f has the smooth solution ⊥
        d2 = eliminate_channel(d1, B, enforce=False)
        assert d2.is_smooth_solution(Trace.empty())

    def test_same_system_substitution_note(self):
        """§7's closing note: D1 = (v ⟵ w, u ⟵ v) and
        D2 = (v ⟵ w, u ⟵ w) do NOT have the same smooth solutions:
        ⟨(w,0)(u,0)(v,0)⟩ solves D2 but not D1."""
        V = Channel("v", alphabet={0})
        W = Channel("w", alphabet={0})
        U = Channel("u", alphabet={0})
        d1 = DescriptionSystem(
            [
                Description(chan(V), chan(W)),
                Description(chan(U), chan(V)),
            ],
            channels=[U, V, W], name="D1",
        )
        d2 = DescriptionSystem(
            [
                Description(chan(V), chan(W)),
                Description(chan(U), chan(W)),
            ],
            channels=[U, V, W], name="D2",
        )
        t = Trace.from_pairs([(W, 0), (U, 0), (V, 0)])
        assert d2.is_smooth_solution(t)
        assert not d1.is_smooth_solution(t)
