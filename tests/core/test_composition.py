"""Unit tests for repro.core.composition — Theorem 2 (§5)."""

import itertools

import pytest

from repro.channels.channel import Channel
from repro.core.composition import Component, ComposedNetwork, pipeline
from repro.core.description import Description
from repro.functions.base import chan
from repro.functions.seq_fns import even_of, odd_of, prepend_of
from repro.processes.deterministic import (
    copy_description,
    prepend0_description,
)
from repro.traces.trace import Trace

B = Channel("b", alphabet={0})
C = Channel("c", alphabet={0})
D = Channel("d", alphabet={0, 1})
E = Channel("e", alphabet={1, 3})


def fig1_components():
    """The two copy processes of Figure 1."""
    return [
        Component("P1", frozenset({B, C}), copy_description(B, C)),
        Component("P2", frozenset({B, C}), copy_description(C, B)),
    ]


class TestComponent:
    def test_satisfies_dc(self):
        comp = Component("P", frozenset({B, C}),
                         copy_description(B, C))
        assert comp.satisfies_dc()

    def test_dc_violation(self):
        comp = Component("P", frozenset({B}),
                         copy_description(B, C))
        assert not comp.satisfies_dc()

    def test_projection(self):
        comp = Component("P", frozenset({B}),
                         Description(chan(B), chan(B)))
        t = Trace.from_pairs([(B, 0), (C, 0)])
        assert comp.project(t) == Trace.from_pairs([(B, 0)])


class TestComposedNetwork:
    def test_dc_enforced_at_construction(self):
        with pytest.raises(ValueError):
            ComposedNetwork([
                Component("bad", frozenset({B}),
                          copy_description(B, C)),
            ])

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            ComposedNetwork([])

    def test_channels_union(self):
        net = ComposedNetwork(fig1_components())
        assert net.channels == frozenset({B, C})

    def test_fig1_only_smooth_solution_is_empty(self):
        # §2.1: the two-copy loop's behaviour is the empty trace
        net = ComposedNetwork(fig1_components())
        assert net.network_smooth(Trace.empty())
        for t in [
            Trace.from_pairs([(B, 0)]),
            Trace.from_pairs([(B, 0), (C, 0)]),
            Trace.from_pairs([(C, 0), (B, 0)]),
        ]:
            assert not net.network_smooth(t)

    def test_fig1_modified_loops_forever(self):
        # with b ⟵ 0;c the loop emits 0s forever: ⟨(b,0)(c,0)…⟩ is
        # smooth in the limit, every finite prefix is not
        components = [
            Component("P1", frozenset({B, C}),
                      copy_description(B, C)),
            Component("P2", frozenset({B, C}),
                      prepend0_description(C, B)),
        ]
        net = ComposedNetwork(components)
        omega = Trace.cycle_pairs([(B, 0), (C, 0)])
        assert net.network_smooth(omega, depth=24)
        assert not net.network_smooth(Trace.empty())
        assert not net.network_smooth(omega.take(4))


class TestSublemma:
    def test_equivalence_exhaustively(self):
        # network smooth ≡ componentwise smooth, on all small traces
        from repro.channels.event import Event

        net = ComposedNetwork(fig1_components())
        events = [Event(B, 0), Event(C, 0)]
        for n in range(4):
            for combo in itertools.product(events, repeat=n):
                t = Trace.finite(combo)
                assert net.sublemma_agrees(t)

    def test_mixed_network_sublemma(self):
        # P (doubles into d) feeding a dfm-like discriminator
        p = Component(
            "P", frozenset({D}),
            Description(even_of(chan(D)), prepend_of(0, even_of(chan(D)))),
        )
        from repro.channels.event import Event

        q = Component(
            "Q", frozenset({D, E}),
            Description(odd_of(chan(D)), chan(E)),
        )
        net = ComposedNetwork([p, q])
        events = [Event(D, 0), Event(D, 1), Event(E, 1)]
        for n in range(3):
            for combo in itertools.product(events, repeat=n):
                assert net.sublemma_agrees(Trace.finite(combo))

    def test_network_trace_definition(self):
        net = ComposedNetwork(fig1_components())
        assert net.is_network_trace(Trace.empty())
        assert not net.is_network_trace(Trace.from_pairs([(B, 0)]))


class TestPipeline:
    def test_chain_of_copies(self):
        # b → c → d: quiescent traces require full propagation
        chans = [Channel(f"x{i}", alphabet={0}) for i in range(4)]
        comps = [
            Component(
                f"copy{i}",
                frozenset({chans[i], chans[i + 1]}),
                copy_description(chans[i], chans[i + 1]),
            )
            for i in range(3)
        ]
        net = pipeline(comps)
        assert net.network_smooth(Trace.empty())
        full = Trace.from_pairs([(c, 0) for c in chans])
        # x0 is nobody's output here; a trace with x0 fed and all
        # copies propagated is smooth
        assert net.network_smooth(full)
        stalled = Trace.from_pairs([(chans[0], 0)])
        assert not net.network_smooth(stalled)
