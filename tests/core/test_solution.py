"""Unit tests for repro.core.solution (verdict objects)."""

from repro.channels.channel import Channel
from repro.core.description import Description
from repro.core.solution import LimitReport, SolutionVerdict
from repro.functions.base import chan, const_seq
from repro.seq.finite import fseq
from repro.traces.trace import Trace

B = Channel("b", alphabet={0, 2})


def desc():
    return Description(chan(B), const_seq(fseq(0), name="⟨0⟩"))


class TestLimitReport:
    def test_str_success(self):
        r = LimitReport(True, True, fseq(0), fseq(0), 8)
        assert "holds" in str(r) and "exactly" in str(r)

    def test_str_bounded(self):
        r = LimitReport(True, False, fseq(0), fseq(0), 8)
        assert "depth 8" in str(r)


class TestSolutionVerdict:
    def test_smooth_verdict(self):
        v = desc().check(Trace.from_pairs([(B, 0)]))
        assert v.is_smooth and v.is_solution and v.exact
        assert "smooth solution" in str(v)

    def test_limit_failure_verdict(self):
        v = desc().check(Trace.empty())
        assert not v.is_smooth
        assert not v.is_solution
        assert v.first_violation is None  # only the limit fails
        assert "NOT" in str(v)

    def test_smoothness_failure_verdict(self):
        v = desc().check(Trace.from_pairs([(B, 2)]))
        assert not v.is_smooth
        assert v.first_violation is not None
        assert v.first_violation.u.length() == 0

    def test_violation_str_mentions_description(self):
        v = desc().check(Trace.from_pairs([(B, 2)]))
        assert "⟵" in v.first_violation.description or \
            v.first_violation.description
