"""Unit tests for repro.core.solver — the §3.3 tree search."""

import pytest

from repro.channels.channel import Channel
from repro.core.description import Description, combine
from repro.core.solver import (
    SmoothSolutionSolver,
    alphabet_candidates,
    rhs_guided_candidates,
    solve,
)
from repro.functions.base import chan, const_seq
from repro.functions.seq_fns import (
    affine_of,
    even_of,
    odd_of,
    prepend_of,
    scale_of,
)
from repro.seq.finite import fseq
from repro.traces.trace import Trace

B = Channel("b", alphabet={0, 2})
C = Channel("c", alphabet={1, 3})
D = Channel("d", alphabet={0, 1, 2, 3})


def dfm():
    return combine([
        Description(even_of(chan(D)), chan(B)),
        Description(odd_of(chan(D)), chan(C)),
    ], name="dfm")


class TestCandidates:
    def test_alphabet_candidates(self):
        gen = alphabet_candidates([B, C])
        events = list(gen(Trace.empty()))
        assert len(events) == 4
        assert all(e.channel in (B, C) for e in events)

    def test_requires_finite_alphabets(self):
        with pytest.raises(ValueError):
            alphabet_candidates([Channel("x")])


class TestTreeStructure:
    def test_children_of_root(self):
        solver = SmoothSolutionSolver.over_channels(dfm(), [B, C, D])
        kids = list(solver.children(Trace.empty()))
        # any input admissible; no output admissible yet
        assert all(k.item(0).channel in (B, C) for k in kids)
        assert len(kids) == 4

    def test_children_allow_justified_output(self):
        solver = SmoothSolutionSolver.over_channels(dfm(), [B, C, D])
        u = Trace.from_pairs([(B, 0)])
        kids = list(solver.children(u))
        messages_on_d = [
            k.item(1).message for k in kids
            if k.item(1).channel == D
        ]
        assert messages_on_d == [0]

    def test_is_node(self):
        solver = SmoothSolutionSolver.over_channels(dfm(), [B, C, D])
        assert solver.is_node(Trace.from_pairs([(B, 0), (D, 0)]))
        assert not solver.is_node(Trace.from_pairs([(D, 0)]))


class TestExploration:
    def test_every_enumerated_solution_is_smooth(self):
        desc = dfm()
        result = solve(desc, [B, C, D], max_depth=4)
        assert result.finite_solutions
        for s in result.finite_solutions:
            assert desc.is_smooth_solution(s)

    def test_completeness_on_finite_universe(self):
        # brute-force all traces up to length 3 and compare
        import itertools

        from repro.channels.event import Event

        desc = dfm()
        events = [Event(B, 0), Event(B, 2), Event(C, 1), Event(C, 3),
                  Event(D, 0), Event(D, 1), Event(D, 2), Event(D, 3)]
        brute = set()
        for n in range(4):
            for combo in itertools.product(events, repeat=n):
                t = Trace.finite(combo)
                if desc.is_smooth_solution(t):
                    brute.add(t)
        result = solve(desc, [B, C, D], max_depth=3)
        enumerated = {
            s for s in result.finite_solutions if s.length() <= 3
        }
        assert enumerated == brute

    def test_root_counted_for_chaos_like(self):
        k = const_seq(fseq())
        desc = Description(k, k, name="K ⟵ K")
        result = solve(desc, [B], max_depth=2)
        # every node is a solution: 1 + 2 + 4
        assert len(result.finite_solutions) == 7

    def test_frontier_for_ticks(self):
        bt = Channel("t", alphabet={"T"})
        desc = Description(chan(bt), prepend_of("T", chan(bt)))
        result = solve(desc, [bt], max_depth=5)
        assert result.finite_solutions == []
        assert len(result.frontier) == 1  # the single live path

    def test_dead_ends_detected(self):
        # conflicting requirements: b ⟵ ⟨0⟩ and b ⟵ ⟨0 0⟩ — the node
        # ⟨(b,0)⟩ satisfies neither the limit condition nor has any
        # admissible extension (the second conjunct allows the step but
        # the first forbids ⟨0 0⟩ ⊑ ⟨0⟩)
        desc = combine([
            Description(chan(B), const_seq(fseq(0))),
            Description(chan(B), const_seq(fseq(0, 0))),
        ])
        result = solve(desc, [B], max_depth=3)
        assert result.finite_solutions == []
        assert Trace.from_pairs([(B, 0)]) in result.dead_ends

    def test_node_budget_yields_truncated_partial_result(self):
        k = const_seq(fseq())
        desc = Description(k, k)
        solver = SmoothSolutionSolver.over_channels(desc, [D])
        result = solver.explore(max_depth=10, max_nodes=20)
        assert result.truncated
        assert "node budget" in result.truncation_reason
        assert result.nodes_explored <= 20
        # unexamined nodes are parked on the unvisited bucket, not
        # lost — and NOT on the frontier, whose invariant (admissible
        # extensions exist) was never checked for them
        assert result.unvisited
        assert not result.frontier

    def test_wall_clock_budget_yields_truncated_result(self):
        k = const_seq(fseq())
        desc = Description(k, k)
        solver = SmoothSolutionSolver.over_channels(desc, [D])
        result = solver.explore(max_depth=10, budget_seconds=0.0)
        assert result.truncated
        assert "wall-clock" in result.truncation_reason

    def test_unbudgeted_exploration_not_truncated(self):
        result = solve(dfm(), [B, C, D], max_depth=2)
        assert not result.truncated
        assert result.truncation_reason == ""

    def test_broken_candidate_generator_is_diagnosed(self):
        from repro.core.solver import CandidateError

        k = const_seq(fseq())
        desc = Description(k, k)

        from repro.channels.event import Event

        def hostile(u):
            if u.length() >= 1:
                raise ValueError("generator bug")
            return [Event(D, 0)]

        solver = SmoothSolutionSolver(desc, hostile)
        with pytest.raises(CandidateError) as info:
            solver.explore(max_depth=3)
        # the diagnostic names the offending trace and the original error
        assert "generator bug" in str(info.value)
        assert info.value.trace.length() == 1

    def test_iter_paths(self):
        desc = dfm()
        solver = SmoothSolutionSolver.over_channels(desc, [B, C, D])
        paths = list(solver.iter_paths(2))
        assert all(p.length() <= 2 for p in paths)
        assert paths  # nonempty


class TestRhsGuidedCandidates:
    def test_fig3_enumeration(self):
        # §2.3's network: even(d) ⟵ 0;2×d, odd(d) ⟵ 2×d+1 on an
        # unbounded alphabet; candidates come from the right side.
        d = Channel("d")
        desc = combine([
            Description(even_of(chan(d)),
                        prepend_of(0, scale_of(2, chan(d)))),
            Description(odd_of(chan(d)), affine_of(2, 1, chan(d))),
        ], name="fig3")
        candidates = rhs_guided_candidates([d], desc)
        solver = SmoothSolutionSolver(desc, candidates)
        result = solver.explore(max_depth=4)
        # no finite solutions (output never stops), but live frontier
        assert result.finite_solutions == []
        assert result.frontier
        # every frontier prefix starts with 0 (the forced first output)
        for t in result.frontier:
            assert t.item(0).message == 0

    def test_guided_candidates_are_finite(self):
        d = Channel("d")
        desc = combine([
            Description(even_of(chan(d)),
                        prepend_of(0, scale_of(2, chan(d)))),
            Description(odd_of(chan(d)), affine_of(2, 1, chan(d))),
        ])
        candidates = rhs_guided_candidates([d], desc)
        events = list(candidates(Trace.empty()))
        assert len(events) < 20
