"""Unit tests for repro.core.fixpoint_bridge — Kahn semantics (§2.1)."""

import pytest

from repro.channels.channel import Channel
from repro.core.description import Description, DescriptionSystem
from repro.core.fixpoint_bridge import (
    KahnSystem,
    NotDeterministicError,
    kahn_least_fixpoint,
)
from repro.functions.base import chan, const_seq
from repro.functions.seq_fns import even_of, prepend_of, scale_of
from repro.processes.deterministic import (
    copy_description,
    prepend0_description,
)
from repro.seq.finite import EMPTY, fseq

B = Channel("b", alphabet={0})
C = Channel("c", alphabet={0})
D = Channel("d")


def fig1_system():
    """c ⟵ b , b ⟵ c (the two-copy loop)."""
    return DescriptionSystem(
        [copy_description(B, C), copy_description(C, B)],
        channels=[B, C], name="fig1",
    )


def fig1_modified_system():
    """c ⟵ b , b ⟵ 0;c."""
    return DescriptionSystem(
        [copy_description(B, C), prepend0_description(C, B)],
        channels=[B, C], name="fig1'",
    )


class TestKahnForm:
    def test_accepts_kahn_form(self):
        KahnSystem.from_system(fig1_system())

    def test_rejects_non_channel_lhs(self):
        system = DescriptionSystem(
            [Description(even_of(chan(D)), chan(B))],
            channels=[B, D],
        )
        with pytest.raises(NotDeterministicError):
            KahnSystem.from_system(system)

    def test_rejects_duplicate_definitions(self):
        system = DescriptionSystem(
            [
                Description(chan(B), const_seq(fseq(0))),
                Description(chan(B), const_seq(EMPTY)),
            ],
            channels=[B],
        )
        with pytest.raises(NotDeterministicError):
            KahnSystem.from_system(system)


class TestFig1:
    def test_least_fixpoint_is_empty(self):
        # §2.1: the unique least fixpoint of c = b, b = c is ε, ε
        semantics = kahn_least_fixpoint(fig1_system())
        assert semantics.converged
        env = semantics.environment()
        assert env[B] == EMPTY
        assert env[C] == EMPTY

    def test_nonempty_solutions_exist_but_not_least(self):
        # b = c = ⟨3⟩ also solves the equations (the paper's remark) —
        # it is a fixpoint but not the least one
        system = KahnSystem.from_system(fig1_system())
        three = Channel("b", alphabet={0, 3})
        del three
        candidate = (fseq(0), fseq(0))
        assert system.step(candidate) == candidate  # a fixpoint
        lfp = system.least_fixpoint().fixpoint.value
        assert system.domain().leq(lfp, candidate)
        assert not system.domain().leq(candidate, lfp)


class TestFig1Modified:
    def test_iteration_does_not_converge(self):
        semantics = kahn_least_fixpoint(fig1_modified_system(),
                                        max_iterations=30)
        assert not semantics.converged

    def test_lazy_lfp_is_zero_omega(self):
        # §2.1: least solution is b = c = 0^ω
        semantics = kahn_least_fixpoint(fig1_modified_system(),
                                        max_iterations=10)
        lazy = semantics.lazy_environment()
        assert lazy[B].take(6) == fseq(0, 0, 0, 0, 0, 0)
        assert lazy[C].take(4) == fseq(0, 0, 0, 0)

    def test_finite_approximations_grow(self):
        semantics = kahn_least_fixpoint(fig1_modified_system(),
                                        max_iterations=12)
        chain = semantics.fixpoint.chain
        lengths = [len(env[0]) for env in chain]
        assert lengths == sorted(lengths)
        assert lengths[-1] > lengths[0]


class TestDoublingChain:
    def test_single_process_lfp(self):
        # b ⟵ 0;2×b alone: lfp is 0, 0, 0, … (each element doubles the
        # previous output stream's element: all zeros)
        system = DescriptionSystem(
            [Description(chan(D),
                         prepend_of(0, scale_of(2, chan(D))))],
            channels=[D],
        )
        semantics = kahn_least_fixpoint(system, max_iterations=8)
        lazy = semantics.lazy_environment()
        assert lazy[D].take(4) == fseq(0, 0, 0, 0)

    def test_environment_of(self):
        system = KahnSystem.from_system(fig1_system())
        # description order is (c ⟵ b, b ⟵ c), so channels are (C, B)
        assert system.channels == (C, B)
        env = system.environment_of((fseq(0), EMPTY))
        assert env[C] == fseq(0)
        assert env[B] == EMPTY
