"""Edge cases of the description machinery: lazy values on both sides,
trace-valued (projection) sides, and mixed codomains."""

from repro.channels.channel import Channel
from repro.core.description import Description, combine
from repro.functions.base import (
    ConstFn,
    ProjectionFn,
    chan,
    const_seq,
)
from repro.seq.builders import repeat
from repro.seq.finite import fseq
from repro.seq.ordering import SequenceCpo
from repro.traces.domain import TraceCpo
from repro.traces.trace import Trace

B = Channel("b", alphabet={0, 1})
C = Channel("c", alphabet={0, 1})


class TestLazyValuesBothSides:
    def test_lazy_constant_description(self):
        # K ⟵ K with K an *infinite* lazy constant: every trace is a
        # smooth solution (the CHAOS argument), and the bounded
        # comparison machinery must cope with unknown-length values
        trues = ConstFn(repeat("T"), SequenceCpo(), name="T^ω")
        desc = Description(trues, trues, name="T^ω ⟵ T^ω")
        assert desc.is_smooth_solution(Trace.empty())
        assert desc.is_smooth_solution(Trace.from_pairs([(B, 0)]))

    def test_lazy_vs_finite_conclusively_unequal(self):
        trues = ConstFn(repeat("T"), SequenceCpo(), name="T^ω")
        finite = const_seq(fseq("T"), name="⟨T⟩")
        desc = Description(finite, trues)
        # ⟨T⟩ ≠ T^ω is decided within the depth bound
        assert not desc.limit_holds(Trace.empty(), depth=8)

    def test_smoothness_with_lazy_rhs(self):
        # f finite-valued, g lazy-valued: f(v) ⊑ g(u) decidable
        trues = ConstFn(repeat("T"), SequenceCpo(), name="T^ω")
        bit = Channel("bit", alphabet={"T"})
        desc = Description(chan(bit), trues)
        assert desc.smoothness_holds(
            Trace.from_pairs([(bit, "T")] * 3)
        )


class TestProjectionValuedDescriptions:
    def test_projection_lhs(self):
        # π_{b}(t) ⟵ const(⟨(b,0)⟩): smooth solutions carry exactly
        # one (b,0), anywhere among other channels' events
        target = Trace.from_pairs([(B, 0)])
        desc = Description(
            ProjectionFn(frozenset({B})),
            ConstFn(target, TraceCpo(frozenset({B}))),
            name="π_b ⟵ ⟨(b,0)⟩",
        )
        assert desc.is_smooth_solution(Trace.from_pairs([(B, 0)]))
        assert desc.is_smooth_solution(
            Trace.from_pairs([(C, 1), (B, 0), (C, 0)])
        )
        assert not desc.is_smooth_solution(Trace.empty())
        assert not desc.is_smooth_solution(
            Trace.from_pairs([(B, 0), (B, 0)])
        )

    def test_mixed_codomain_combination(self):
        # combine a projection-valued and a sequence-valued description
        target = Trace.from_pairs([(B, 0)])
        proj_desc = Description(
            ProjectionFn(frozenset({B})),
            ConstFn(target, TraceCpo(frozenset({B}))),
        )
        seq_desc = Description(chan(C), const_seq(fseq(1)))
        both = combine([proj_desc, seq_desc])
        assert both.is_smooth_solution(
            Trace.from_pairs([(B, 0), (C, 1)])
        )
        assert not both.is_smooth_solution(
            Trace.from_pairs([(B, 0)])
        )
        assert not both.is_smooth_solution(
            Trace.from_pairs([(C, 1)])
        )


class TestVerdictExactness:
    def test_finite_values_exact(self):
        desc = Description(chan(B), const_seq(fseq(0)))
        assert desc.check(Trace.from_pairs([(B, 0)])).exact

    def test_lazy_value_not_exact(self):
        trues = ConstFn(repeat("T"), SequenceCpo(), name="T^ω")
        desc = Description(trues, trues)
        assert not desc.check(Trace.empty()).exact

    def test_identity_equation_has_only_bottom(self):
        # b ⟵ b is x = f(x) with f = id: by Theorem 4 its only smooth
        # solution is the least fixpoint ε — appending any b event
        # violates smoothness (b(v) ⋢ b(u))
        desc = Description(chan(B), chan(B), name="b ⟵ b")
        assert desc.is_smooth_solution(Trace.empty())
        assert not desc.is_smooth_solution(Trace.from_pairs([(B, 0)]))
        omega = Trace.cycle_pairs([(B, 0)])
        assert not desc.is_smooth_solution(omega, depth=8)

    def test_lazy_trace_not_exact(self):
        from repro.functions.seq_fns import prepend_of

        bit = Channel("bit", alphabet={"T"})
        desc = Description(chan(bit), prepend_of("T", chan(bit)))
        omega = Trace.cycle_pairs([(bit, "T")])
        verdict = desc.check(omega, depth=8)
        assert verdict.is_smooth and not verdict.exact
