"""Unit tests for repro.core.chains — §6 and Theorem 4."""

import pytest

from repro.core.chains import (
    GeneralDescription,
    dominated_by_kleene,
    id_description,
    kleene_witness_chain,
    theorem4_unique_smooth_solution,
)
from repro.order.cpo import CountableChain
from repro.order.flat import TF, BOTTOM
from repro.seq import SEQ_CPO, EMPTY, FiniteSeq, fseq


def saturating(limit: int):
    def h(s: FiniteSeq) -> FiniteSeq:
        return s if len(s) >= limit else s.append(1)

    return h


class TestGeneralDescription:
    def test_limit_condition(self):
        desc = id_description(saturating(2), SEQ_CPO)
        assert desc.limit_holds(fseq(1, 1))
        assert not desc.limit_holds(fseq(1))

    def test_smoothness_on_kleene_chain(self):
        h = saturating(3)
        desc = id_description(h, SEQ_CPO)
        chain = kleene_witness_chain(h, SEQ_CPO)
        assert desc.smoothness_holds_on(chain, upto=6)

    def test_is_smooth_via(self):
        h = saturating(2)
        desc = id_description(h, SEQ_CPO)
        chain = kleene_witness_chain(h, SEQ_CPO)
        assert desc.is_smooth_via(fseq(1, 1), chain, upto=5)

    def test_wrong_z_rejected(self):
        h = saturating(2)
        desc = id_description(h, SEQ_CPO)
        chain = kleene_witness_chain(h, SEQ_CPO)
        # ⟨1⟩ upper-bounds only the start of the chain
        assert not desc.is_smooth_via(fseq(1), chain, upto=5)

    def test_non_kleene_witness_chain(self):
        # a hand-built chain witnessing the same solution
        h = saturating(2)
        desc = id_description(h, SEQ_CPO)
        chain = CountableChain.from_elements(
            SEQ_CPO, [EMPTY, fseq(1), fseq(1, 1)]
        )
        assert desc.is_smooth_via(fseq(1, 1), chain, upto=5)

    def test_flat_domain_description(self):
        # over {T,F,⊥}: h constant T; smooth solution is T
        desc = id_description(lambda x: "T", TF)
        chain = kleene_witness_chain(lambda x: "T", TF)
        assert desc.is_smooth_via("T", chain, upto=3)
        assert not desc.limit_holds("F")


class TestTheorem4:
    def test_direction1_lfp_is_smooth(self):
        # the Kleene chain witnesses the least fixpoint
        h = saturating(4)
        lfp = theorem4_unique_smooth_solution(h, SEQ_CPO)
        assert lfp == fseq(1, 1, 1, 1)
        desc = id_description(h, SEQ_CPO)
        chain = kleene_witness_chain(h, SEQ_CPO)
        assert desc.is_smooth_via(lfp, chain, upto=8)

    def test_direction2_domination(self):
        # any smoothness-satisfying chain is below the Kleene chain
        h = saturating(3)
        slow = CountableChain.from_elements(
            SEQ_CPO, [EMPTY, EMPTY, fseq(1), fseq(1, 1),
                      fseq(1, 1, 1)]
        )
        desc = id_description(h, SEQ_CPO)
        assert desc.smoothness_holds_on(slow, upto=6)
        assert dominated_by_kleene(slow, h, SEQ_CPO, upto=6)

    def test_direction2_violator_not_dominated(self):
        # a chain that jumps ahead of hⁿ(⊥) violates smoothness
        h = saturating(3)
        fast = CountableChain.from_elements(
            SEQ_CPO, [EMPTY, fseq(1, 1)]
        )
        desc = id_description(h, SEQ_CPO)
        assert not desc.smoothness_holds_on(fast, upto=2)
        assert not dominated_by_kleene(fast, h, SEQ_CPO, upto=2)

    def test_uniqueness_on_flat_domain(self):
        # id ⟵ h over flat {T,F,⊥} with h = identity: the least
        # fixpoint is ⊥ and is the only smooth solution reachable from
        # a ⊥-rooted chain
        lfp = theorem4_unique_smooth_solution(lambda x: x, TF)
        assert lfp is BOTTOM

    def test_nonconverging_iteration_raises(self):
        with pytest.raises(RuntimeError):
            theorem4_unique_smooth_solution(
                lambda s: s.append(1), SEQ_CPO, max_iterations=10
            )
