"""The compiled engine is bit-identical to the reference loop.

The tentpole claim of :mod:`repro.core.compiled`: interning, packed
traces and batched frontier evaluation change *where the time goes*,
never *what comes out*.  Every observable artifact — result digests,
truncation reasons, checkpoints, resume results, cache keys and
cross-engine cache hits — is asserted equal between the two engines,
and everything outside the compilable fragment must fall back to the
reference path automatically.
"""

import pytest

from repro.channels.channel import Channel
from repro.channels.event import Event
from repro.core.compiled import compile_description
from repro.core.description import Description, combine
from repro.core.solver import (
    SmoothSolutionSolver,
    alphabet_candidates,
    rhs_guided_candidates,
)
from repro.functions.base import LambdaFn, chan, const_seq
from repro.functions.seq_fns import even_of, odd_of, scale_of
from repro.seq.finite import FiniteSeq
from repro.seq.ordering import SEQ_CPO
from repro.traces.trace import Trace

B = Channel("b", alphabet={0, 2})
C = Channel("c", alphabet={1, 3})
D = Channel("d", alphabet={0, 1, 2, 3})


def dfm():
    return combine([
        Description(even_of(chan(D)), chan(B)),
        Description(odd_of(chan(D)), chan(C)),
    ], name="dfm")


def solver(compiled, **kw):
    return SmoothSolutionSolver(dfm(), alphabet_candidates([B, C, D]),
                                compiled=compiled, **kw)


class TestDigestParity:
    @pytest.mark.parametrize("depth", range(0, 6))
    def test_dfm_digest_equal_at_every_depth(self, depth):
        ref = solver(False).explore(depth)
        com = solver(True).explore(depth)
        assert com.digest() == ref.digest()
        assert com.nodes_explored == ref.nodes_explored
        assert [repr(t) for t in com.finite_solutions] == \
            [repr(t) for t in ref.finite_solutions]
        assert [repr(t) for t in com.frontier] == \
            [repr(t) for t in ref.frontier]

    def test_single_description_spec(self):
        out = Channel("out", alphabet={"a", "b"})
        spec = Description(chan(out),
                           const_seq(FiniteSeq(("a", "b"))),
                           name="const-out")
        cand = alphabet_candidates([out])
        ref = SmoothSolutionSolver(spec, cand,
                                   compiled=False).explore(4)
        com = SmoothSolutionSolver(spec, cand,
                                   compiled=True).explore(4)
        assert com.digest() == ref.digest()

    def test_face_free_op_compiles_via_generic_wrapper(self):
        # an OpFn without a tuple_face goes through box/unbox —
        # slower, still compiled, still identical
        lifted = scale_of(2, chan(D))
        del lifted.op.tuple_face
        spec = Description(lifted, chan(B), name="boxed")
        cand = alphabet_candidates([B, D])
        assert compile_description(spec, cand) is not None
        ref = SmoothSolutionSolver(spec, cand,
                                   compiled=False).explore(3)
        com = SmoothSolutionSolver(spec, cand,
                                   compiled=True).explore(3)
        assert com.digest() == ref.digest()


class TestTruncationParity:
    @pytest.mark.parametrize("max_nodes", [1, 3, 10, 50, 128, 300])
    def test_node_budget_truncation_digest_equal(self, max_nodes):
        ref = solver(False).explore(4, max_nodes=max_nodes)
        com = solver(True).explore(4, max_nodes=max_nodes)
        assert com.digest() == ref.digest()
        assert com.truncated == ref.truncated
        assert com.truncation_reason == ref.truncation_reason


class TestCheckpointResumeParity:
    @pytest.mark.parametrize("first,second", [
        (False, False), (False, True), (True, False), (True, True),
    ])
    def test_truncate_resume_across_engine_mixes(self, first, second):
        full = solver(False).explore(4)
        part = solver(first).explore(4, max_nodes=100)
        assert part.truncated
        resumed = solver(second).explore(
            4, resume_from=part.checkpoint())
        assert resumed.digest() == full.digest()
        assert resumed.nodes_explored == full.nodes_explored

    def test_complete_checkpoint_resumes_to_itself(self):
        full = solver(True).explore(3)
        resumed = solver(True).explore(
            3, resume_from=full.checkpoint())
        assert resumed.digest() == full.digest()

    def test_checkpoint_json_round_trip(self, tmp_path):
        part = solver(True).explore(4, max_nodes=64)
        path = tmp_path / "ckpt.json"
        part.checkpoint().save(path)
        resumed = solver(False).explore(4, resume_from=str(path))
        assert resumed.digest() == solver(False).explore(4).digest()


class TestCacheParity:
    def test_cache_key_identical_across_engines(self):
        from repro.cache.keys import solver_cache_key

        spec = dfm()
        cand = alphabet_candidates([B, C, D])
        # the key is a function of the inputs only — engine choice
        # must not leak into it, or engines would not share entries
        k1 = solver_cache_key(spec, cand, 4, 64, 200_000, None)
        k2 = solver_cache_key(spec, cand, 4, 64, 200_000, None)
        assert k1 == k2

    def test_cross_engine_cache_hit(self, tmp_path):
        from repro.cache.store import CacheStore

        cache = CacheStore(tmp_path)
        first = solver(True, cache=cache).explore(4)
        counts = cache.counters()
        hit = solver(False, cache=cache).explore(4)
        assert cache.counters()["hit"] == counts["hit"] + 1
        assert hit.digest() == first.digest()


class TestFragmentGating:
    def test_instrumented_description_stays_on_reference(self):
        # exact-type gating: a Description subclass must not compile,
        # so the memoization-count tests keep seeing their calls
        class Sub(Description):
            pass

        spec = Sub(even_of(chan(D)), chan(B), name="sub")
        assert compile_description(
            spec, alphabet_candidates([B, D])) is None

    def test_lambda_fn_side_stays_on_reference(self):
        spec = Description(
            LambdaFn("opaque", lambda t: t.sequence_on(D),
                     codomain=SEQ_CPO),
            chan(B), name="opaque")
        assert compile_description(
            spec, alphabet_candidates([B, D])) is None

    def test_rhs_guided_candidates_stay_on_reference(self):
        # no constant_events alphabet -> nothing to intern
        spec = dfm()
        cand = rhs_guided_candidates([B, C, D], spec)
        assert compile_description(spec, cand) is None
        com = SmoothSolutionSolver(spec, cand, compiled=None)
        ref = SmoothSolutionSolver(spec, cand, compiled=False)
        assert com.explore(3).digest() == ref.explore(3).digest()

    def test_compiled_true_raises_outside_fragment(self):
        spec = dfm()
        cand = rhs_guided_candidates([B, C, D], spec)
        s = SmoothSolutionSolver(spec, cand, compiled=True)
        with pytest.raises(ValueError, match="compilable fragment"):
            s.explore(3)

    def test_probe_rejects_a_lying_face(self):
        # a face that disagrees with its op is caught at compile
        # time by the single-event probe, not silently trusted;
        # even_filter is shared module state, so restore it
        lifted = even_of(chan(D))
        original = lifted.op.tuple_face
        lifted.op.tuple_face = lambda t: t  # wrong on purpose
        try:
            spec = Description(lifted, chan(B), name="liar")
            assert compile_description(
                spec, alphabet_candidates([B, D])) is None
        finally:
            lifted.op.tuple_face = original

    def test_auto_detection_defaults_on_for_dfm(self):
        assert compile_description(
            dfm(), alphabet_candidates([B, C, D])) is not None


class TestInternTableBoundary:
    def test_unseen_but_valid_pair_round_trips(self):
        from repro.traces.intern import InternTable

        events = [Event(B, 0), Event(B, 2)]
        tab = InternTable(events)
        t = Trace.finite([Event(B, 0)])
        assert tab.unpack(tab.pack(t)) == t

    def test_empty_trace_unpacks_to_canonical_bottom(self):
        from repro.traces.intern import InternTable

        tab = InternTable([Event(B, 0)])
        assert tab.unpack(()) is Trace.empty()
