"""Catalog tests: Fair random sequence (§4.7), Finite ticks (§4.8),
Random number (§4.9) — the fairness-encoding processes."""

import itertools

from repro.channels.event import Event
from repro.processes import fair_random, finite_ticks, random_number
from repro.processes.fair_random import bit_trace
from repro.seq.combinators import count_occurrences
from repro.traces.trace import Trace


def get(process, name):
    return next(c for c in process.channels if c.name == name)


class TestFairRandom:
    def test_no_finite_traces(self):
        process = fair_random.make()
        assert process.traces_upto(4) == set()

    def test_fair_infinite_sequences_are_smooth(self):
        process = fair_random.make()
        c = get(process, "c")
        desc = process.description()
        for prefix in ((), ("T", "T", "F"), ("F", "F", "F", "T")):
            t = bit_trace(c, prefix)
            assert desc.is_smooth_solution(t, depth=24), prefix

    def test_unfair_all_ts_rejected(self):
        process = fair_random.make()
        c = get(process, "c")
        all_ts = Trace.cycle_pairs([(c, "T")])
        # FALSE(c) stalls while falses grows: limit conclusively fails
        assert not process.description().is_smooth_solution(
            all_ts, depth=24
        )

    def test_unfair_all_fs_rejected(self):
        process = fair_random.make()
        c = get(process, "c")
        all_fs = Trace.cycle_pairs([(c, "F")])
        assert not process.description().is_smooth_solution(
            all_fs, depth=24
        )

    def test_finite_prefixes_are_nonquiescent_histories(self):
        process = fair_random.make()
        c = get(process, "c")
        desc = process.description()
        for bits in itertools.product("TF", repeat=3):
            t = Trace.from_pairs([(c, x) for x in bits])
            assert desc.smoothness_holds(t)
            assert not desc.limit_holds(t)


class TestFiniteTicks:
    def test_every_finite_count_is_a_trace(self):
        process = finite_ticks.make()
        d = get(process, "d")
        for i in range(5):
            t = Trace.from_pairs([(d, "T")] * i)
            assert process.is_trace(t, depth=48), i

    def test_omega_is_not_a_trace(self):
        process = finite_ticks.make()
        d = get(process, "d")
        omega = Trace.cycle_pairs([(d, "T")])
        assert not process.is_trace(omega)

    def test_witness_structure(self):
        from repro.processes.finite_ticks import witness

        process = finite_ticks.make()
        d = get(process, "d")
        c = next(iter(process.auxiliary_channels))
        t = Trace.from_pairs([(d, "T")] * 2)
        w = witness(t, c, d)
        assert w is not None
        # projection onto the visible channel reproduces t
        assert w.take(40).project({d}) == t

    def test_garbage_has_no_witness(self):
        from repro.processes.finite_ticks import witness

        process = finite_ticks.make()
        d = get(process, "d")
        c = next(iter(process.auxiliary_channels))
        bad = Trace.from_pairs([(d, "T")])
        bad = Trace.finite([Event(d, "T"), Event(d, "T")])
        assert witness(bad, c, d) is not None  # fine: 2 ticks
        # a non-tick message would be rejected by the channel itself;
        # a trace on the wrong channel has no witness:
        assert witness(Trace.from_pairs([(c, "T")]), c, d) is None


class TestRandomNumber:
    def test_every_natural_is_a_trace(self):
        process = random_number.make()
        d = get(process, "d")
        for n in (0, 1, 3, 7):
            t = Trace.from_pairs([(d, n)])
            assert process.is_trace(t, depth=48), n

    def test_empty_is_not_a_trace(self):
        # the process always outputs exactly one number
        process = random_number.make()
        assert not process.is_trace(Trace.empty())

    def test_two_outputs_not_a_trace(self):
        process = random_number.make()
        d = get(process, "d")
        t = Trace.from_pairs([(d, 1), (d, 2)])
        assert not process.is_trace(t)

    def test_negative_not_a_trace(self):
        process = random_number.make()
        d = get(process, "d")
        assert not process.is_trace(Trace.from_pairs([(d, -1)]))

    def test_unbounded_nondeterminism(self):
        """The §4.9 punchline: one finite description admits
        arbitrarily large outputs — no bound exists."""
        process = random_number.make()
        d = get(process, "d")
        assert process.is_trace(Trace.from_pairs([(d, 25)]),
                                depth=64)


class TestBitTraceHelper:
    def test_alternation_is_fair(self):
        process = fair_random.make()
        c = get(process, "c")
        t = bit_trace(c, ("T",))
        bits = t.take(41).messages_on(c)
        assert count_occurrences(bits, "T") >= 15
        assert count_occurrences(bits, "F") >= 15
