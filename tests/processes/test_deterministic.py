"""Catalog tests: the deterministic processes of §2 and the Network
wrapper (§3.1.2)."""

import pytest

from repro.channels.channel import Channel
from repro.processes.deterministic import (
    make_affine,
    make_brock_a,
    make_brock_b,
    make_copy,
    make_doubler,
    make_prepend0,
)
from repro.processes.network import Network
from repro.processes.process import Process
from repro.traces.trace import Trace


class TestCopy:
    def test_quiescent_requires_propagation(self):
        process = make_copy()
        b = next(c for c in process.channels if c.name == "b")
        c = next(ch for ch in process.channels if ch.name == "c")
        assert process.is_trace(Trace.empty())
        assert process.is_trace(Trace.from_pairs([(b, 0), (c, 0)]))
        assert not process.is_trace(Trace.from_pairs([(b, 0)]))
        assert not process.is_trace(Trace.from_pairs([(c, 0)]))

    def test_copy_preserves_content(self):
        process = make_copy()
        b = next(ch for ch in process.channels if ch.name == "b")
        c = next(ch for ch in process.channels if ch.name == "c")
        wrong = Trace.from_pairs([(b, 0), (c, 1)])
        assert not process.is_trace(wrong)


class TestPrepend0:
    def test_initial_output_required(self):
        process = make_prepend0()
        b = next(ch for ch in process.channels if ch.name == "b")
        assert not process.is_trace(Trace.empty())
        assert process.is_trace(Trace.from_pairs([(b, 0)]))


class TestDoublerAndAffine:
    def test_doubler(self):
        d = Channel("d", alphabet={0, 1, 2})
        b = Channel("b", alphabet={0, 2, 4})
        process = make_doubler(d, b)
        assert process.is_trace(Trace.from_pairs([(b, 0)]))
        assert process.is_trace(
            Trace.from_pairs([(b, 0), (d, 1), (b, 2)])
        )
        assert not process.is_trace(
            Trace.from_pairs([(b, 0), (d, 1), (b, 4)])
        )

    def test_affine(self):
        d = Channel("d", alphabet={0, 1})
        c = Channel("c", alphabet={1, 3})
        process = make_affine(d, c)
        assert process.is_trace(Trace.empty())
        assert process.is_trace(Trace.from_pairs([(d, 1), (c, 3)]))
        assert not process.is_trace(Trace.from_pairs([(d, 1),
                                                      (c, 1)]))


class TestBrockProcesses:
    def test_brock_a_outputs_stored_items(self):
        b = Channel("b", alphabet={1, 3})
        c = Channel("c", alphabet={0, 1, 2, 3})
        process = make_brock_a(b, c)
        # quiescent only after both stored items (0, 2) are out
        assert process.is_trace(Trace.from_pairs([(c, 0), (c, 2)]))
        assert not process.is_trace(Trace.empty())
        assert not process.is_trace(Trace.from_pairs([(c, 0)]))

    def test_brock_a_merges_input(self):
        b = Channel("b", alphabet={1, 3})
        c = Channel("c", alphabet={0, 1, 2, 3})
        process = make_brock_a(b, c)
        assert process.is_trace(
            Trace.from_pairs([(c, 0), (b, 1), (c, 1), (c, 2)])
        )
        # dropped input: not quiescent
        assert not process.is_trace(
            Trace.from_pairs([(c, 0), (c, 2), (b, 1)])
        )

    def test_brock_b_needs_two_inputs(self):
        b = Channel("b", alphabet={1, 2, 3})
        c = Channel("c", alphabet={0, 1, 2, 3})
        process = make_brock_b(c, b)
        assert process.is_trace(Trace.empty())
        assert process.is_trace(Trace.from_pairs([(c, 0)]))
        # two inputs force the output
        assert not process.is_trace(Trace.from_pairs([(c, 0),
                                                      (c, 2)]))
        assert process.is_trace(
            Trace.from_pairs([(c, 0), (c, 2), (b, 1)])
        )


class TestNetwork:
    def test_network_trace_definition(self):
        # t is a network trace iff every projection is a component trace
        b = Channel("b", alphabet={0})
        c = Channel("c", alphabet={0})
        d = Channel("d", alphabet={0})
        p1 = make_copy(b, c, name="p1")
        p2 = make_copy(c, d, name="p2")
        net = Network([p1, p2], name="chain")
        assert net.channels == frozenset({b, c, d})
        good = Trace.from_pairs([(b, 0), (c, 0), (d, 0)])
        stalled = Trace.from_pairs([(b, 0), (c, 0)])
        assert net.is_trace(good)
        assert not net.is_trace(stalled)

    def test_network_composed_description(self):
        b = Channel("b", alphabet={0})
        c = Channel("c", alphabet={0})
        d = Channel("d", alphabet={0})
        net = Network([make_copy(b, c), make_copy(c, d)])
        composed = net.composed()
        good = Trace.from_pairs([(b, 0), (c, 0), (d, 0)])
        assert composed.network_smooth(good)
        assert composed.sublemma_agrees(good)

    def test_network_system_pools_descriptions(self):
        b = Channel("b", alphabet={0})
        c = Channel("c", alphabet={0})
        net = Network([make_copy(b, c)])
        assert len(net.system()) == 1

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            Network([])

    def test_undescribed_component_rejected_for_composition(self):
        b = Channel("b", alphabet={0})
        raw = Process("raw", [b], lambda t: True)
        net = Network([raw])
        with pytest.raises(TypeError):
            net.composed()
