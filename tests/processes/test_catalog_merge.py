"""Catalog tests: dfm (§2.2) and fair merge (§4.10, Figure 7)."""

import itertools

import pytest

from repro.channels.event import Event
from repro.core.elimination import eliminate_channels
from repro.processes import merge
from repro.processes.merge import route, witness
from repro.seq.combinators import interleavings
from repro.seq.finite import fseq
from repro.traces.trace import Trace


def get(process, name):
    return next(c for c in process.channels if c.name == name)


class TestDfm:
    def test_paper_examples(self):
        process = merge.make_dfm()
        b, c, d = (get(process, n) for n in "bcd")
        desc = process.description()
        # §3.1.1 example 1: quiescent traces
        for t in [
            Trace.empty(),
            Trace.from_pairs([(b, 0), (d, 0)]),
            Trace.from_pairs([(b, 0), (c, 1), (c, 3), (d, 1),
                              (d, 3), (d, 0)]),
        ]:
            assert desc.is_smooth_solution(t)
        # and the non-quiescent histories
        for t in [
            Trace.from_pairs([(b, 0)]),
            Trace.from_pairs([(b, 0), (d, 0), (c, 1)]),
        ]:
            assert desc.smoothness_holds(t)
            assert not desc.limit_holds(t)

    def test_infinite_quiescent_trace(self):
        process = merge.make_dfm()
        b, d = get(process, "b"), get(process, "d")
        omega = Trace.cycle_pairs([(b, 0), (d, 0)])
        assert process.description().is_smooth_solution(omega,
                                                        depth=24)

    def test_merge_order_is_free(self):
        # both output orders for one even + one odd input are traces
        process = merge.make_dfm()
        b, c, d = (get(process, n) for n in "bcd")
        t1 = Trace.from_pairs([(b, 0), (c, 1), (d, 0), (d, 1)])
        t2 = Trace.from_pairs([(b, 0), (c, 1), (d, 1), (d, 0)])
        assert process.is_trace(t1)
        assert process.is_trace(t2)

    def test_wrong_channel_parity_rejected(self):
        process = merge.make_dfm()
        b = get(process, "b")
        with pytest.raises(ValueError):
            Event(b, 1)  # odd message on the even channel

    def test_invented_output_rejected(self):
        process = merge.make_dfm()
        d = get(process, "d")
        assert not process.is_trace(Trace.from_pairs([(d, 0)]))

    def test_output_set_is_interleavings(self):
        """The d-sequences of quiescent traces with inputs ⟨0 2⟩ and
        ⟨1⟩ are exactly the interleavings of the two inputs."""
        process = merge.make_dfm()
        b, c, d = (get(process, n) for n in "bcd")
        want = {tuple(s) for s in interleavings(fseq(0, 2), fseq(1))}
        got = set()
        solutions = process.traces_upto(6)
        for t in solutions:
            if t.messages_on(b) == fseq(0, 2) and \
                    t.messages_on(c) == fseq(1):
                got.add(tuple(t.messages_on(d)))
        assert got == want


class TestFairMergeRouting:
    def test_simple(self):
        process = merge.make_fair_merge()
        c, d, e = (get(process, n) for n in "cde")
        t = Trace.from_pairs([(c, 0), (d, 1), (e, 0), (e, 1)])
        assert route(t, c, d, e) == [0, 1]

    def test_ambiguity_backtracked(self):
        process = merge.make_fair_merge()
        c, d, e = (get(process, n) for n in "cde")
        # both inputs carry 0; either assignment works but the second
        # output must come from the other side
        t = Trace.from_pairs([(c, 0), (d, 0), (e, 0), (e, 0)])
        tags = route(t, c, d, e)
        assert sorted(tags) == [0, 1]

    def test_unmerged_input_not_quiescent(self):
        process = merge.make_fair_merge()
        c, d, e = (get(process, n) for n in "cde")
        assert route(Trace.from_pairs([(c, 0)]), c, d, e) is None

    def test_per_side_order(self):
        process = merge.make_fair_merge()
        c, d, e = (get(process, n) for n in "cde")
        t = Trace.from_pairs([(c, 0), (c, 1), (e, 1), (e, 0)])
        assert route(t, c, d, e) is None


class TestFairMergeProcess:
    def test_every_interleaving_is_a_trace(self):
        process = merge.make_fair_merge()
        c, d, e = (get(process, n) for n in "cde")
        left, right = fseq(0, 1), fseq(2)
        for merged in interleavings(left, right):
            t = Trace.from_pairs(
                [(c, m) for m in left] + [(d, m) for m in right]
                + [(e, m) for m in merged]
            )
            assert process.is_trace(t, depth=24), t

    def test_starvation_is_not_quiescent(self):
        # dropping an input (unfair merge) is not quiescent
        process = merge.make_fair_merge()
        c, d, e = (get(process, n) for n in "cde")
        t = Trace.from_pairs([(c, 0), (d, 1), (e, 0)])
        assert not process.is_trace(t)

    def test_invented_output_rejected(self):
        process = merge.make_fair_merge()
        e = get(process, "e")
        assert not process.is_trace(Trace.from_pairs([(e, 0)]))


class TestFigure7Elimination:
    def test_eliminating_c1_d1_matches_reduced_system(self):
        """§4.10: eliminating c', d' from the Figure-7 system yields
        the reduced three-description system; their smooth solutions
        agree on the reduced channel set."""
        full = merge.make_fair_merge(full_network=True)
        reduced = merge.make_fair_merge()
        c1 = next(ch for ch in full.channels if ch.name == "c'")
        d1 = next(ch for ch in full.channels if ch.name == "d'")
        eliminated = eliminate_channels(full.system, [c1, d1])

        c, d, e = (get(reduced, n) for n in "cde")
        b = next(ch for ch in reduced.channels
                 if ch.name == "b_merge")
        # same smooth solutions on a family of witness traces
        samples = [
            Trace.empty(),
            witness(Trace.from_pairs([(c, 0), (e, 0)]), b, c, d, e),
            witness(Trace.from_pairs([(c, 0), (d, 1), (e, 1),
                                      (e, 0)]), b, c, d, e),
            Trace.from_pairs([(c, 0)]),
            Trace.from_pairs([(e, 0)]),
        ]
        for t in samples:
            if t is None:
                continue
            assert eliminated.is_smooth_solution(t) == \
                reduced.system.is_smooth_solution(t), t
