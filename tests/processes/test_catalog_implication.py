"""Catalog tests: Implication (§4.5) and its reader exercises."""

import itertools

from repro.channels.channel import Channel
from repro.channels.event import Event
from repro.core.description import Description
from repro.functions.base import chan
from repro.functions.logic import and_of
from repro.processes import implication
from repro.processes.implication import expected_traces
from repro.traces.trace import Trace


def get(process, name):
    return next(c for c in process.channels if c.name == name)


class TestImplicationTraceSet:
    def test_exactly_the_four_traces(self):
        process = implication.make()
        c, d = get(process, "c"), get(process, "d")
        assert process.traces_upto(3) == expected_traces(c, d)

    def test_membership_via_witness_search(self):
        process = implication.make()
        c, d = get(process, "c"), get(process, "d")
        assert process.is_trace(Trace.from_pairs([(c, "T"),
                                                  (d, "F")]))
        # output T on input F is impossible
        assert not process.is_trace(Trace.from_pairs([(c, "F"),
                                                      (d, "T")]))
        # output before input is impossible
        assert not process.is_trace(Trace.from_pairs([(d, "T"),
                                                      (c, "T")]))

    def test_auxiliary_channel_is_hidden(self):
        process = implication.make()
        assert all(not ch.auxiliary for ch in process.visible_channels)
        assert len(process.auxiliary_channels) == 1


class TestReaderExercise:
    def test_d_from_c_and_d_is_not_a_description(self):
        """§4.5 asks why ``d ⟵ c AND d`` does not describe the process.

        Answer made concrete: ⟨(c,T)⟩ — the process has received T and
        *must* answer — satisfies that description's limit condition
        (d = ε, AND(⟨T⟩, ε) = ε), so the bogus description wrongly
        calls this non-quiescent history quiescent."""
        c = Channel("c", alphabet={"T", "F"})
        d = Channel("d", alphabet={"T", "F"})
        bogus = Description(chan(d), and_of(chan(c), chan(d)))
        pending = Trace.from_pairs([(c, "T")])
        assert bogus.is_smooth_solution(pending)  # wrongly accepted
        # whereas the real process does not consider it a trace:
        process = implication.make(c=c, d=d)
        assert not process.is_trace(pending)

    def test_bogus_description_rejects_genuine_traces(self):
        """The deeper reason ``d ⟵ c AND d`` fails: with ``d`` on both
        sides, an output would have to be caused by itself as input —
        exactly what smoothness forbids.  So the genuine trace
        ⟨(c,T)(d,T)⟩ is *rejected*: at u = ⟨(c,T)⟩ the step needs
        ⟨T⟩ = d(v) ⊑ AND(c(u), d(u)) = AND(⟨T⟩, ε) = ε."""
        c = Channel("c", alphabet={"T", "F"})
        d = Channel("d", alphabet={"T", "F"})
        bogus = Description(chan(d), and_of(chan(c), chan(d)))
        good = Trace.from_pairs([(c, "T"), (d, "T")])
        assert not bogus.is_smooth_solution(good)
        violation = bogus.check(good).first_violation
        assert violation is not None
        assert violation.u == Trace.from_pairs([(c, "T")])


class TestOperationalAgreement:
    def test_operational_traces_match(self):
        from repro.kahn.agents import implication_agent, source_agent
        from repro.kahn.quiescence import quiescent_traces

        process = implication.make()
        c, d = get(process, "c"), get(process, "d")

        observed = set()
        for bit in ("T", "F"):
            observed |= quiescent_traces(
                lambda bit=bit: {
                    "env": source_agent(c, [bit]),
                    "imp": implication_agent(c, d),
                },
                [c, d], seeds=range(12), max_steps=50,
            )
        # plus the no-input run
        observed |= quiescent_traces(
            lambda: {"imp": implication_agent(c, d)},
            [c, d], seeds=range(2), max_steps=50,
        )
        assert observed == expected_traces(c, d)
