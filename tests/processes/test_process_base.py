"""Unit tests for repro.processes.process (membership machinery)."""

import pytest

from repro.channels.channel import Channel
from repro.core.description import Description, DescriptionSystem
from repro.functions.base import chan, const_seq
from repro.processes.process import DescribedProcess, Process
from repro.seq.finite import fseq
from repro.traces.trace import Trace

V = Channel("v", alphabet={0})
H = Channel("h", alphabet={0}, auxiliary=True)


def process_with_aux() -> DescribedProcess:
    """v ⟵ h , h ⟵ ⟨0⟩: visible v echoes a hidden constant."""
    system = DescriptionSystem(
        [
            Description(chan(V), chan(H)),
            Description(chan(H), const_seq(fseq(0), name="⟨0⟩")),
        ],
        channels=[V, H],
    )
    return DescribedProcess("echo", [V, H], system)


class TestPlainProcess:
    def test_extensional_process(self):
        p = Process("any", [V], lambda t: t.length() < 2)
        assert p.is_trace(Trace.empty())
        assert not p.is_trace(Trace.from_pairs([(V, 0), (V, 0)]))

    def test_project(self):
        p = Process("any", [V], lambda t: True)
        t = Trace.from_pairs([(V, 0), (H, 0)])
        assert p.project(t) == Trace.from_pairs([(V, 0)])

    def test_repr(self):
        assert "v" in repr(Process("any", [V], lambda t: True))


class TestVisibleChannels:
    def test_split(self):
        p = process_with_aux()
        assert p.visible_channels == frozenset({V})
        assert p.auxiliary_channels == frozenset({H})


class TestAuxMembership:
    def test_positive(self):
        p = process_with_aux()
        assert p.is_trace(Trace.from_pairs([(V, 0)]))

    def test_negative(self):
        p = process_with_aux()
        assert not p.is_trace(Trace.from_pairs([(V, 0), (V, 0)]))

    def test_empty_not_a_trace(self):
        # the hidden constant must flow: ε is not quiescent
        p = process_with_aux()
        assert not p.is_trace(Trace.empty())

    def test_lazy_trace_rejected_without_witness(self):
        p = process_with_aux()
        import itertools

        from repro.channels.event import Event

        lazy = Trace.lazy(
            Event(V, 0) for _ in itertools.count()
        )
        with pytest.raises(ValueError):
            p.is_trace(lazy)

    def test_is_trace_within_widens_search(self):
        p = process_with_aux()
        assert p.is_trace_within(Trace.from_pairs([(V, 0)]),
                                 search_depth=4)
        assert not p.is_trace_within(Trace.from_pairs([(V, 0)]),
                                     search_depth=1)

    def test_traces_upto_projects(self):
        p = process_with_aux()
        got = p.traces_upto(3)
        assert got == {Trace.from_pairs([(V, 0)])}

    def test_smooth_solutions_keep_aux(self):
        p = process_with_aux()
        solutions = p.smooth_solutions_upto(3)
        assert all(s.count_on(H) == 1 for s in solutions)


class TestWitnessHook:
    def test_witness_none_means_rejection(self):
        system = DescriptionSystem(
            [Description(chan(V), chan(H)),
             Description(chan(H), const_seq(fseq(0)))],
            channels=[V, H],
        )
        p = DescribedProcess("echo", [V, H], system,
                             witness_fn=lambda t: None)
        assert not p.is_trace(Trace.from_pairs([(V, 0)]))

    def test_bad_witness_rejected(self):
        system = DescriptionSystem(
            [Description(chan(V), chan(H)),
             Description(chan(H), const_seq(fseq(0)))],
            channels=[V, H],
        )
        # witness that does not project to t
        p = DescribedProcess(
            "echo", [V, H], system,
            witness_fn=lambda t: Trace.from_pairs([(H, 0)]),
        )
        assert not p.is_trace(Trace.from_pairs([(V, 0)]))

    def test_good_witness_accepted(self):
        system = DescriptionSystem(
            [Description(chan(V), chan(H)),
             Description(chan(H), const_seq(fseq(0)))],
            channels=[V, H],
        )
        p = DescribedProcess(
            "echo", [V, H], system,
            witness_fn=lambda t: Trace.from_pairs([(H, 0), (V, 0)]),
        )
        assert p.is_trace(Trace.from_pairs([(V, 0)]))

    def test_witness_with_surplus_visible_event_rejected(self):
        system = DescriptionSystem(
            [Description(chan(V), chan(H)),
             Description(chan(H), const_seq(fseq(0)))],
            channels=[V, H],
        )
        p = DescribedProcess(
            "echo", [V, H], system,
            witness_fn=lambda t: Trace.from_pairs(
                [(H, 0), (V, 0), (V, 0)]
            ),
        )
        assert not p.is_trace(Trace.empty())
