"""Catalog tests: CHAOS (§4.1), Ticks (§4.2), Random bit (§4.3/4.4)."""

import itertools

from repro.channels.channel import Channel
from repro.channels.event import Event
from repro.processes import chaos, random_bit, ticks
from repro.processes.ticks import the_trace
from repro.traces.trace import Trace


class TestChaos:
    def test_every_trace_is_a_trace(self):
        process = chaos.make()
        b = next(iter(process.channels))
        events = [Event(b, m) for m in sorted(b.alphabet)]
        for n in range(4):
            for combo in itertools.product(events, repeat=n):
                assert process.is_trace(Trace.finite(combo))

    def test_infinite_trace_is_smooth(self):
        process = chaos.make()
        b = next(iter(process.channels))
        omega = Trace.cycle_pairs([(b, 0), (b, 1)])
        assert process.description().is_smooth_solution(omega,
                                                        depth=16)

    def test_enumeration_counts(self):
        # over a 2-letter alphabet: 1 + 2 + 4 + 8 traces to depth 3
        process = chaos.make()
        assert len(process.traces_upto(3)) == 15

    def test_derivation_argument(self):
        """§4.1 derives that f must be constant along tree edges; spot-
        check: combining K ⟵ K with any trace gives equal f values on
        all prefixes."""
        desc = chaos.chaos_description()
        b = Channel("b", alphabet={0, 1})
        t = Trace.from_pairs([(b, 0), (b, 1)])
        values = {desc.lhs.apply(p) for p in t.prefixes()}
        assert len(values) == 1


class TestTicks:
    def test_no_finite_traces(self):
        process = ticks.make()
        assert process.traces_upto(5) == set()

    def test_omega_is_the_trace(self):
        process = ticks.make()
        b = next(iter(process.channels))
        assert process.description().is_smooth_solution(
            the_trace(b), depth=32
        )

    def test_finite_prefixes_satisfy_smoothness_only(self):
        process = ticks.make()
        b = next(iter(process.channels))
        prefix = the_trace(b).take(4)
        desc = process.description()
        assert desc.smoothness_holds(prefix)
        assert not desc.limit_holds(prefix)

    def test_unique_live_path(self):
        process = ticks.make()
        result = process.solver().explore(6)
        assert len(result.frontier) == 1


class TestRandomBit:
    def test_exactly_two_traces(self):
        process = random_bit.make()
        b = next(iter(process.channels))
        assert process.traces_upto(3) == {
            Trace.from_pairs([(b, "T")]),
            Trace.from_pairs([(b, "F")]),
        }

    def test_empty_not_quiescent(self):
        # the process *will* output a bit: ε is not a trace
        process = random_bit.make()
        assert not process.is_trace(Trace.empty())

    def test_two_bits_not_a_trace(self):
        process = random_bit.make()
        b = next(iter(process.channels))
        assert not process.is_trace(
            Trace.from_pairs([(b, "T"), (b, "F")])
        )


class TestRandomBitSequence:
    def test_one_bit_per_tick(self):
        process = random_bit.make_sequence()
        b = next(c for c in process.channels if c.name == "b")
        c = next(ch for ch in process.channels if ch.name == "c")
        # quiescent: bits answered for every tick
        good = Trace.from_pairs([(c, "T"), (b, "F"), (c, "T"),
                                 (b, "T")])
        assert process.is_trace(good)
        # pending tick: not quiescent
        pending = Trace.from_pairs([(c, "T")])
        assert not process.is_trace(pending)
        # unsolicited bit: not smooth
        unsolicited = Trace.from_pairs([(b, "T")])
        assert not process.is_trace(unsolicited)

    def test_bit_count_never_exceeds_tick_count(self):
        process = random_bit.make_sequence()
        b = next(c for c in process.channels if c.name == "b")
        c = next(ch for ch in process.channels if ch.name == "c")
        for t in process.traces_upto(4):
            assert t.count_on(b) == t.count_on(c)
