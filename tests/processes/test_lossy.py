"""Tests for the lossy-channel extension (processes/lossy.py)."""

import itertools

import pytest

from repro.channels.channel import Channel
from repro.kahn.explore import exhaustive_quiescent_traces
from repro.kahn.scheduler import RandomOracle, run_network
from repro.kahn.agents import source_agent
from repro.processes import lossy
from repro.processes.lossy import lossy_agent, route, witness
from repro.traces.trace import Trace


def parts():
    process = lossy.make()
    chans = {c.name: c for c in process.channels}
    return process, chans["c"], chans["d"]


class TestRouting:
    def test_full_delivery(self):
        process, c, d = parts()
        t = Trace.from_pairs([(c, 0), (d, 0), (c, 1), (d, 1)])
        assert route(t, c, d) == ["T", "T"]

    def test_total_loss(self):
        process, c, d = parts()
        t = Trace.from_pairs([(c, 0), (c, 1)])
        assert route(t, c, d) == ["F", "F"]

    def test_partial(self):
        process, c, d = parts()
        t = Trace.from_pairs([(c, 0), (c, 1), (d, 1)])
        assert route(t, c, d) == ["F", "T"]

    def test_reordering_impossible(self):
        process, c, d = parts()
        t = Trace.from_pairs([(c, 0), (c, 1), (d, 1), (d, 0)])
        assert route(t, c, d) is None

    def test_delivery_before_input_impossible(self):
        process, c, d = parts()
        t = Trace.from_pairs([(d, 0), (c, 0)])
        assert route(t, c, d) is None

    def test_duplication_impossible(self):
        process, c, d = parts()
        t = Trace.from_pairs([(c, 0), (d, 0), (d, 0)])
        assert route(t, c, d) is None


class TestTraceSet:
    def test_every_subsequence_is_a_trace(self):
        process, c, d = parts()
        inputs = [0, 1, 2]
        for r in range(len(inputs) + 1):
            for kept in itertools.combinations(inputs, r):
                t = Trace.from_pairs(
                    [(c, m) for m in inputs]
                    + [(d, m) for m in kept]
                )
                assert process.is_trace(t, depth=24), kept

    def test_non_subsequences_rejected(self):
        process, c, d = parts()
        bads = [
            Trace.from_pairs([(d, 0)]),
            Trace.from_pairs([(c, 0), (d, 1)]),
            Trace.from_pairs([(c, 0), (c, 1), (d, 1), (d, 0)]),
        ]
        for t in bads:
            assert not process.is_trace(t, depth=16), t

    def test_witness_is_smooth(self):
        process, c, d = parts()
        b = next(iter(process.auxiliary_channels))
        t = Trace.from_pairs([(c, 0), (c, 1), (d, 1)])
        w = witness(t, b, c, d)
        assert process.system.is_smooth_solution(w, depth=24)


class TestOperationalAgent:
    def test_unbounded_lossy_covers_all_subsequences(self):
        process, c, d = parts()
        traces = exhaustive_quiescent_traces(
            lambda: {"src": source_agent(c, [0, 1]),
                     "lossy": lossy_agent(c, d)},
            [c, d], max_steps=30,
        )
        delivered = {
            tuple(t.messages_on(d)) for t in traces
        }
        assert delivered == {(), (0,), (1,), (0, 1)}

    def test_every_operational_trace_is_a_process_trace(self):
        process, c, d = parts()
        traces = exhaustive_quiescent_traces(
            lambda: {"src": source_agent(c, [0, 1]),
                     "lossy": lossy_agent(c, d)},
            [c, d], max_steps=30,
        )
        for t in traces:
            assert process.is_trace(t, depth=24), t

    def test_fair_lossy_bounds_drops(self):
        process, c, d = parts()
        for seed in range(10):
            result = run_network(
                {"src": source_agent(c, [0, 1, 2]),
                 "lossy": lossy_agent(c, d,
                                      max_consecutive_drops=1)},
                [c, d], RandomOracle(seed), max_steps=60,
            )
            assert result.quiescent
            # with a drop bound of 1, at least one of any two
            # consecutive messages is delivered
            assert result.trace.count_on(d) >= 1


class TestRouteAgainstBruteForce:
    """Greedy routing agrees with brute-force subsequence search."""

    def test_exhaustive_small_universe(self):
        process, c, d = parts()
        messages = [0, 1]
        # all input/delivery phrasings up to small sizes, with the
        # deliveries appended after the inputs (causally latest)
        for n_in in range(3):
            for inputs in itertools.product(messages, repeat=n_in):
                for n_out in range(n_in + 2):
                    for outputs in itertools.product(
                            messages, repeat=n_out):
                        t = Trace.from_pairs(
                            [(c, m) for m in inputs]
                            + [(d, m) for m in outputs]
                        )
                        expected = _is_subsequence(
                            list(outputs), list(inputs)
                        )
                        got = route(t, c, d) is not None
                        assert got == expected, (inputs, outputs)


def _is_subsequence(small, big):
    it = iter(big)
    return all(any(x == y for y in it) for x in small)
