"""Catalog tests: Fork (§4.6) — oracle-driven routing."""

import itertools

from repro.processes import fork
from repro.processes.fork import route, witness
from repro.traces.trace import Trace


def get(process, name):
    return next(c for c in process.channels if c.name == name)


def make():
    process = fork.make()
    return (process, get(process, "c"), get(process, "d"),
            get(process, "e"))


class TestRouting:
    def test_simple_split(self):
        process, c, d, e = make()
        t = Trace.from_pairs([(c, 0), (c, 1), (d, 0), (e, 1)])
        assert route(t, c, d, e) == ["T", "F"]

    def test_all_to_one_side(self):
        process, c, d, e = make()
        t = Trace.from_pairs([(c, 0), (d, 0), (c, 1), (d, 1)])
        assert route(t, c, d, e) == ["T", "T"]

    def test_order_preserved_per_side(self):
        process, c, d, e = make()
        # d outputs 1 then 0 but inputs arrived 0 then 1: impossible
        t = Trace.from_pairs([(c, 0), (c, 1), (d, 1), (d, 0)])
        assert route(t, c, d, e) is None

    def test_output_before_input_impossible(self):
        process, c, d, e = make()
        t = Trace.from_pairs([(d, 0), (c, 0)])
        assert route(t, c, d, e) is None

    def test_unrouted_input_not_quiescent(self):
        process, c, d, e = make()
        t = Trace.from_pairs([(c, 0)])
        assert route(t, c, d, e) is None

    def test_ambiguous_messages_resolved_by_backtracking(self):
        process, c, d, e = make()
        # two identical inputs split across outputs, cross order
        t = Trace.from_pairs([(c, 0), (c, 0), (e, 0), (d, 0)])
        bits = route(t, c, d, e)
        assert bits is not None
        assert sorted(bits) == ["F", "T"]


class TestWitness:
    def test_witness_is_smooth_and_projects(self):
        process, c, d, e = make()
        t = Trace.from_pairs([(c, 0), (c, 1), (d, 0), (e, 1)])
        assert process.is_trace(t, depth=24)

    def test_empty_trace(self):
        process, c, d, e = make()
        assert process.is_trace(Trace.empty(), depth=16)

    def test_non_traces_rejected(self):
        process, c, d, e = make()
        for bad in [
            Trace.from_pairs([(d, 0)]),            # output from nowhere
            Trace.from_pairs([(c, 0)]),            # unrouted input
            Trace.from_pairs([(c, 0), (d, 1)]),    # wrong message
        ]:
            assert not process.is_trace(bad, depth=16), bad

    def test_all_splittings_of_two_items(self):
        """§4.6: every splitting of the input across d and e is a trace."""
        process, c, d, e = make()
        inputs = [(c, 0), (c, 1)]
        for sides in itertools.product([0, 1], repeat=2):
            outputs = [
                ((d if side == 0 else e), message)
                for side, (_, message) in zip(sides, inputs)
            ]
            t = Trace.from_pairs(inputs + outputs)
            assert process.is_trace(t, depth=24), t

    def test_witness_oracle_padding(self):
        process, c, d, e = make()
        b = next(iter(process.auxiliary_channels))
        t = Trace.from_pairs([(c, 0), (d, 0)])
        w = witness(t, b, c, d, e)
        assert w is not None
        # infinite oracle tail of T's
        tail = [w.item(i) for i in range(3, 10)]
        assert all(ev.channel == b for ev in tail)
