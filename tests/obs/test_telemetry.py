"""Tests for repro.obs.telemetry — streaming sink, idempotent merger
and the live fleet scoreboard.

The merger's contract is the satellite fix this PR pins: worker
batches may arrive out of order, duplicated, or for attempts that
later fail — and committed spans/metrics must come out exactly once,
in sequence order, only for accepted attempts.
"""

import pytest

from repro.obs import MetricsRegistry, RingBufferSink, Tracer
from repro.obs.telemetry import (
    DEFAULT_BATCH_RECORDS,
    FleetStatus,
    StreamingSink,
    TelemetryMerger,
    grid_metrics_summary,
)
from repro.obs.tracer import EventRecord, SpanRecord


def _span(name, start_ns=0, track="w"):
    return SpanRecord(name=name, category="test", track=track,
                      start_ns=start_ns, dur_ns=10, depth=0)


def _event(name, ts_ns=0, track="w"):
    return EventRecord(name=name, category="test", track=track,
                       ts_ns=ts_ns)


class TestStreamingSink:
    def test_ships_bounded_sequence_numbered_batches(self):
        shipped = []
        sink = StreamingSink(shipped.append, batch_records=3)
        for i in range(7):
            sink.record(_span(f"s{i}", start_ns=i))
        sink.close()
        assert [b["seq"] for b in shipped] == [0, 1, 2]
        assert [len(b["records"]) for b in shipped] == [3, 3, 1]
        names = [r.name for b in shipped for r in b["records"]]
        assert names == [f"s{i}" for i in range(7)]
        assert sink.shipped_records == 7

    def test_close_without_records_ships_nothing(self):
        shipped = []
        StreamingSink(shipped.append).close()
        assert shipped == []

    def test_close_is_idempotent(self):
        shipped = []
        sink = StreamingSink(shipped.append)
        sink.record(_span("a"))
        sink.close()
        sink.close()
        assert len(shipped) == 1

    def test_metric_deltas_are_additive(self):
        # merging every batch's delta reproduces the stream totals no
        # matter how the batches were cut
        shipped = []
        sink = StreamingSink(shipped.append, batch_records=2)
        for i in range(5):
            sink.record(_span(f"s{i}"))
        sink.record(_event("e0"))
        sink.close()
        merged = MetricsRegistry()
        for batch in shipped:
            merged.merge(batch["metrics"])
        summary = merged.summary()
        assert summary["tel.records"] == 6
        assert summary["tel.records.test"] == 6

    def test_epoch_rides_on_every_batch(self):
        shipped = []
        sink = StreamingSink(shipped.append, batch_records=1,
                             epoch_ns=12345)
        sink.record(_span("a"))
        assert shipped[0]["epoch_ns"] == 12345

    def test_rejects_degenerate_batch_size(self):
        with pytest.raises(ValueError):
            StreamingSink(lambda b: None, batch_records=0)

    def test_default_batch_bound(self):
        assert DEFAULT_BATCH_RECORDS >= 1


def _batch(seq, names, counters=None, epoch_ns=0):
    metrics = {"counters": dict(counters or {}), "gauges": {},
               "histograms": {}}
    return {"seq": seq, "records": [_span(n) for n in names],
            "metrics": metrics, "epoch_ns": epoch_ns}


class TestTelemetryMerger:
    def test_duplicate_batches_dropped(self):
        m = TelemetryMerger()
        assert m.ingest("cell", 1, _batch(0, ["a"], {"n": 1}))
        assert not m.ingest("cell", 1, _batch(0, ["a"], {"n": 1}))
        m.commit("cell", 1)
        assert m.committed_registry.summary()["n"] == 1
        assert m.stats()["duplicates_dropped"] == 1

    def test_out_of_order_batches_reassembled_by_seq(self):
        ring = RingBufferSink()
        tracer = Tracer([ring])
        m = TelemetryMerger(tracer)
        m.ingest("cell", 1, _batch(2, ["c"]))
        m.ingest("cell", 1, _batch(0, ["a"]))
        m.ingest("cell", 1, _batch(1, ["b"]))
        n = m.commit("cell", 1)
        assert n == 3
        assert [r.name for r in ring] == ["a", "b", "c"]

    def test_commit_is_idempotent(self):
        ring = RingBufferSink()
        m = TelemetryMerger(Tracer([ring]))
        m.ingest("cell", 1, _batch(0, ["a"], {"n": 2}))
        assert m.commit("cell", 1) == 1
        assert m.commit("cell", 1) == 0
        assert len(list(ring)) == 1
        assert m.committed_registry.summary()["n"] == 2

    def test_abandon_retracts_attempt_wholesale(self):
        ring = RingBufferSink()
        m = TelemetryMerger(Tracer([ring]))
        m.ingest("cell", 1, _batch(0, ["doomed"], {"n": 5}))
        m.abandon("cell", 1)
        # late batch for the dead attempt: dropped, not buffered
        assert not m.ingest("cell", 1, _batch(1, ["late"]))
        # the retry is a fresh attempt and commits cleanly
        m.ingest("cell", 2, _batch(0, ["ok"], {"n": 1}))
        m.commit("cell", 2)
        assert [r.name for r in ring] == ["ok"]
        assert m.committed_registry.summary()["n"] == 1
        assert m.stats()["attempts_abandoned"] == 1
        assert m.stats()["attempts_committed"] == 1

    def test_batches_after_commit_dropped(self):
        m = TelemetryMerger()
        m.ingest("cell", 1, _batch(0, ["a"]))
        m.commit("cell", 1)
        assert not m.ingest("cell", 1, _batch(1, ["straggler"]))
        assert m.stats()["duplicates_dropped"] == 1

    def test_commit_rebases_onto_parent_clock(self):
        ring = RingBufferSink()
        tracer = Tracer([ring])
        m = TelemetryMerger(tracer)
        worker_epoch = tracer._epoch_ns + 500
        batch = _batch(0, ["a"], epoch_ns=worker_epoch)
        batch["records"] = [_span("a", start_ns=7)]
        m.ingest("cell", 1, batch)
        m.commit("cell", 1, track_suffix="@drop×0")
        rec = list(ring)[0]
        assert rec.start_ns == 507
        assert rec.track.endswith("@drop×0")

    def test_distinct_cells_do_not_collide(self):
        m = TelemetryMerger()
        assert m.ingest("cell-a", 1, _batch(0, ["a"]))
        assert m.ingest("cell-b", 1, _batch(0, ["b"]))
        assert m.stats()["duplicates_dropped"] == 0

    def test_live_registry_includes_in_flight(self):
        m = TelemetryMerger()
        m.ingest("done", 1, _batch(0, ["a"], {"n": 1}))
        m.commit("done", 1)
        m.ingest("running", 1, _batch(0, ["b"], {"n": 10}))
        assert m.live_registry().summary()["n"] == 11
        assert m.committed_registry.summary()["n"] == 1


class TestFleetStatus:
    def test_lifecycle_counts(self):
        s = FleetStatus(total=4, workers=2, scenario="dfm")
        s.on_dispatch()
        s.on_complete("conforms", 0.1)
        s.on_settled()
        s.on_dispatch()
        s.on_attempt_failed("timeout")
        s.on_retry()
        s.on_settled()
        s.on_complete("violates-safety", 0.2)
        s.on_complete("conforms", 0.0, cached=True)
        snap = s.snapshot()
        assert snap["done"] == 3
        assert snap["conforming"] == 2   # cache hits conform too
        assert snap["genuine_failures"] == 1
        assert snap["cached"] == 1
        assert snap["timeouts"] == 1
        assert snap["retries"] == 1
        assert snap["busy"] == 0

    def test_infra_outcomes_are_not_genuine_failures(self):
        s = FleetStatus(total=3)
        for outcome in ("timeout", "crashed", "quarantined"):
            s.on_complete(outcome, 0.1)
        snap = s.snapshot()
        assert snap["genuine_failures"] == 0
        assert snap["quarantined"] == 1

    def test_cache_hit_rate(self):
        s = FleetStatus()
        assert s.cache_hit_rate() is None
        s.cache_misses = 3
        s.on_complete("conforms", 0.0, cached=True)
        assert s.cache_hit_rate() == pytest.approx(0.25)

    def test_eta_none_until_real_execution(self):
        s = FleetStatus(total=4)
        assert s.eta_s() is None
        s.on_complete("conforms", 0.0, cached=True)
        assert s.eta_s() is None          # cache hits prove nothing
        s.on_complete("conforms", 0.05)
        eta = s.eta_s()
        assert eta is not None and eta >= 0
        s.on_complete("conforms", 0.05)
        s.on_complete("conforms", 0.05)
        assert s.eta_s() == 0.0

    def test_stream_accounting(self):
        s = FleetStatus()
        s.on_stream(100)
        s.on_stream(28)
        assert s.records_streamed == 128
        assert s.batches_streamed == 2


class TestGridMetricsSummary:
    def test_folds_cells_and_fleet_stats(self):
        class Case:
            def __init__(self, outcome, metrics=None, cached=False):
                self.outcome = outcome
                self.metrics = metrics or {}
                self.cached = cached

        class Report:
            cases = [
                Case("conforms", {"agent.steps": 3}),
                Case("conforms", {"agent.steps": 4}, cached=True),
                Case("violates-safety"),
            ]
            fleet_stats = {"retries": 2, "stream_records": 50,
                           "metrics": {"fleet.attempts": 3}}

        summary = grid_metrics_summary(Report())
        assert summary["grid.cells"] == 3
        assert summary["grid.outcome.conforms"] == 2
        assert summary["grid.outcome.violates-safety"] == 1
        assert summary["grid.cache_hits"] == 1
        assert summary["agent.steps"] == 7      # per-cell totals add
        assert summary["fleet.attempts"] == 3
        assert summary["fleet.stats.retries"] == 2
        assert summary["fleet.stats.stream_records"] == 50
