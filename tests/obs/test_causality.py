"""Happens-before graph reconstruction and divergence explanation.

Covers the causal observatory's core guarantees:

* graph construction from synthetic event streams — program order,
  scheduler edges, message delivery through the fault pipeline
  (pass / drop / duplicate / hold→release), read (poll) edges, and a
  dropped message's surviving provenance;
* determinism — the digest is a pure function of the recorded
  schedule (timestamps excluded), a replayed run rebuilds the same
  graph, and a parallel fleet cell's graph is digest-identical to the
  same cell run serially (via :func:`split_cells`);
* the divergence explainer — on the clean vs black-hole ABP pair the
  root cause is the fault decision dropping the first lost message.
"""

from repro.obs import CausalGraph, RingBufferSink, Tracer, split_cells
from repro.obs.causality import explain_divergence, explain_records
from repro.obs.tracer import EventRecord


def ev(name, track, ts=0, category=None, **args):
    if category is None:
        category = {"scheduler": "scheduler",
                    "faults": "fault"}.get(track, "runtime")
    return EventRecord(name=name, category=category, track=track,
                       ts_ns=ts, args=args)


def edges_by_label(graph, label):
    return [(s, d) for s, d, lab in graph.edges if lab == label]


# -- construction from synthetic streams ------------------------------------


def clean_exchange():
    """sender sends m on ch (no fault pipeline), receiver recvs it."""
    return [
        ev("oracle.pick_agent", "scheduler", 1,
           step=0, ready=["sender"], chosen="sender"),
        ev("send", "sender", 2, channel="ch", message="m", step=0),
        ev("oracle.pick_agent", "scheduler", 3,
           step=1, ready=["receiver"], chosen="receiver"),
        ev("recv", "receiver", 4, channel="ch", message="m", step=1),
    ]


def test_clean_send_recv_edges():
    g = CausalGraph.from_records(clean_exchange())
    assert [n.node_id for n in g.nodes] == [
        "scheduler#0", "sender#0", "scheduler#1", "receiver#0"]
    # the un-faulted send delivers itself; recv consumes it
    assert edges_by_label(g, "msg") == [("sender#0", "receiver#0")]
    # each pick enables the step it chose
    assert ("scheduler#0", "sender#0") in edges_by_label(g, "sched")
    assert ("scheduler#1", "receiver#0") in edges_by_label(g, "sched")
    # scheduler program order, no agent-to-agent program order
    assert ("scheduler#0", "scheduler#1") in edges_by_label(g, "po")
    assert g.deliveries == [("ch", "m", "sender#0")]
    # Lamport clocks: recv strictly after the send that caused it
    assert g.node("receiver#0").clock > g.node("sender#0").clock


def test_span_and_foreign_categories_ignored():
    from repro.obs.tracer import SpanRecord

    records = clean_exchange() + [
        SpanRecord(name="solver.explore", category="solver",
                   track="solver", start_ns=0, dur_ns=5, depth=0),
        ev("cache.get", "harness", 9, category="harness", key="k"),
    ]
    assert CausalGraph.from_records(records).digest() == \
        CausalGraph.from_records(clean_exchange()).digest()


def test_drop_keeps_provenance_without_delivery():
    records = [
        ev("oracle.pick_agent", "scheduler", 1,
           step=0, ready=["s"], chosen="s"),
        ev("send", "s", 2, channel="ch", message="m", step=0),
        ev("fault.send", "faults", 3, channel="ch", message="m",
           action="drop", delivered=0, held=0, step=0),
    ]
    g = CausalGraph.from_records(records)
    # the dropped message's provenance survives as a fault edge …
    assert edges_by_label(g, "fault") == [("s#0", "faults#0")]
    # … but produces no delivery and no msg edge
    assert g.deliveries == []
    assert edges_by_label(g, "msg") == []
    fault = g.node("faults#0")
    assert fault.is_decision
    assert fault.args["action"] == "drop"


def test_duplicate_delivers_twice_from_one_verdict():
    records = [
        ev("send", "s", 1, channel="ch", message="m", step=0),
        ev("fault.send", "faults", 2, channel="ch", message="m",
           action="duplicate", delivered=2, held=0, step=0),
        ev("recv", "r", 3, channel="ch", message="m", step=1),
        ev("recv", "r", 4, channel="ch", message="m", step=2),
    ]
    g = CausalGraph.from_records(records)
    assert g.deliveries == [("ch", "m", "faults#0")] * 2
    assert edges_by_label(g, "msg") == [
        ("faults#0", "r#0"), ("faults#0", "r#1")]


def test_hold_release_threads_through_the_pipeline():
    records = [
        ev("send", "s", 1, channel="ch", message="m", step=0),
        ev("fault.send", "faults", 2, channel="ch", message="m",
           action="hold", delivered=0, held=1, step=0),
        ev("fault.release", "faults", 3, channel="ch", message="m",
           step=3),
        ev("recv", "r", 4, channel="ch", message="m", step=4),
    ]
    g = CausalGraph.from_records(records)
    # send -> hold verdict -> release -> recv, all causally chained
    assert ("s#0", "faults#0") in edges_by_label(g, "fault")
    assert ("faults#0", "faults#1") in edges_by_label(g, "fault")
    assert ("faults#1", "r#0") in edges_by_label(g, "msg")
    assert g.deliveries == [("ch", "m", "faults#1")]
    assert g.path("s#0", "r#0") == \
        ["s#0", "faults#0", "faults#1", "r#0"]


def test_poll_peeks_without_consuming():
    records = [
        ev("send", "s", 1, channel="ch", message="m", step=0),
        ev("poll", "r", 2, channel="ch", available=True, step=1),
        ev("recv", "r", 3, channel="ch", message="m", step=2),
    ]
    g = CausalGraph.from_records(records)
    assert edges_by_label(g, "read") == [("s#0", "r#0")]
    # the poll did not consume: the recv still gets the msg edge
    assert edges_by_label(g, "msg") == [("s#0", "r#1")]


def test_critical_path_and_queries():
    g = CausalGraph.from_records(clean_exchange())
    chain = g.critical_path()
    assert chain[-1].clock == max(n.clock for n in g.nodes)
    assert [n.clock for n in chain] == \
        list(range(1, len(chain) + 1))
    assert "sender#0" in g.ancestors("receiver#0")
    assert "receiver#0" in g.descendants("scheduler#0")
    assert g.path("scheduler#0", "receiver#0") is not None
    assert g.path("receiver#0", "scheduler#0") is None


def test_exports_are_well_formed():
    import json

    g = CausalGraph.from_records(clean_exchange())
    doc = g.to_json()
    assert doc["digest"] == g.digest()
    assert len(doc["nodes"]) == len(g.nodes)
    json.dumps(doc)                      # JSON-serializable
    dot = g.to_dot(title="t")
    assert dot.startswith('digraph "t"')
    assert '"sender#0" -> "receiver#0"' in dot
    flows = g.flow_arrows()
    assert flows and flows[0]["src_track"] == "sender"
    assert flows[0]["dst_track"] == "receiver"


def test_digest_ignores_timestamps():
    shifted = [EventRecord(name=r.name, category=r.category,
                           track=r.track, ts_ns=r.ts_ns + 1_000_000,
                           args=dict(r.args))
               for r in clean_exchange()]
    assert CausalGraph.from_records(shifted).digest() == \
        CausalGraph.from_records(clean_exchange()).digest()


# -- split_cells -------------------------------------------------------------


def test_split_cells_strips_suffix_and_groups():
    from repro.obs.perfetto import rebase_records

    base = clean_exchange()
    merged = (rebase_records(base, offset_ns=10,
                             track_suffix="@p×1")
              + rebase_records(base, offset_ns=99,
                               track_suffix="@p×2")
              + [ev("fleet.dispatch", "fleet", 0, category="fleet")])
    cells = split_cells(merged)
    assert set(cells) == {"p×1", "p×2", ""}
    d1 = CausalGraph.from_records(cells["p×1"]).digest()
    d2 = CausalGraph.from_records(cells["p×2"]).digest()
    base_digest = CausalGraph.from_records(base).digest()
    assert d1 == d2 == base_digest
    # the originals were not mutated
    assert merged[0].track.endswith("@p×1")


# -- determinism on real runs ------------------------------------------------


def _traced_cell(task):
    from repro.par import _cell_worker

    case, records, _ = _cell_worker(task)
    return case, records


def test_parallel_cell_graph_equals_serial():
    """A fleet cell's graph (suffix stripped) is digest-identical to
    the same cell run serially — the merged timeline loses nothing."""
    from repro import par
    from repro.par import CellTask, get_scenario

    ring = RingBufferSink(capacity=500_000)
    tracer = Tracer([ring])
    report = par.run_conformance_parallel(
        "dfm", seeds=range(2), workers=2, tracer=tracer)
    assert not report.genuine_failures
    cells = {name: recs for name, recs in
             split_cells(list(ring.records)).items() if name}
    assert cells, "fleet buffer carried no per-cell records"
    steps = get_scenario("dfm").max_steps
    checked = 0
    for name, cell_records in sorted(cells.items()):
        plan, seed = name.rsplit("×", 1)
        assert any(c.plan == plan and c.seed == int(seed)
                   for c in report.cases), f"no case for cell {name!r}"
        task = CellTask(scenario="dfm", plan=plan, seed=int(seed),
                        max_steps=steps, traced=True)
        _, serial_records = _traced_cell(task)
        assert CausalGraph.from_records(cell_records).digest() == \
            CausalGraph.from_records(serial_records).digest(), \
            f"cell {name!r} diverges from its serial run"
        checked += 1
    assert checked == len(report.cases)


# -- divergence explanation --------------------------------------------------


def test_identical_runs_explained_as_identical():
    expl = explain_records(clean_exchange(), clean_exchange())
    assert expl.identical
    assert "identical" in expl.describe()


def test_drop_explains_missing_delivery():
    clean = clean_exchange()
    dropped = [
        ev("oracle.pick_agent", "scheduler", 1,
           step=0, ready=["sender"], chosen="sender"),
        ev("send", "sender", 2, channel="ch", message="m", step=0),
        ev("fault.send", "faults", 3, channel="ch", message="m",
           action="drop", delivered=0, held=0, step=0),
    ]
    expl = explain_records(clean, dropped)
    assert not expl.identical
    assert expl.index == 0
    assert expl.delivery_a == ("ch", "m")
    assert expl.delivery_b is None
    assert expl.root_run == "B"
    assert expl.root.name == "fault.send"
    assert expl.root.args["action"] == "drop"
    # the chain walks the drop's causal past: the send it consumed
    chain_ids = [n.node_id for n in expl.chain]
    assert chain_ids[-1] == "faults#0"
    assert "sender#0" in chain_ids
    text = expl.describe()
    assert "drop" in text and "root cause" in text


def _record_abp(plan_name, tmp_path, seed=11):
    from repro.__main__ import cmd_record

    path = tmp_path / f"{plan_name}.json"
    assert cmd_record("alternating_bit", plan_name, seed,
                      max_steps=4000, out=str(path)) == 0
    return path


def _traced_replay(path):
    from repro.__main__ import _traced_replay_records
    from repro.obs.recorder import Schedule

    return _traced_replay_records(Schedule.load(str(path)))


def test_black_hole_root_cause_is_first_drop(tmp_path):
    """The acceptance case: clean vs black-hole ABP — the explainer
    must name the fault decision that dropped the first lost
    message as the root cause."""
    clean = _traced_replay(_record_abp("no-faults", tmp_path))
    hole = _traced_replay(_record_abp("black-hole", tmp_path))
    ga = CausalGraph.from_records(clean)
    gb = CausalGraph.from_records(hole)
    # replays are deterministic: rebuilding gives the same digest
    assert ga.digest() == CausalGraph.from_records(clean).digest()
    expl = explain_divergence(ga, gb)
    assert not expl.identical
    assert expl.index == 0                     # first delivery differs
    assert expl.root_run == "B"
    assert expl.root.name == "fault.send"
    assert expl.root.args["action"] == "drop"
    assert expl.root.args["channel"] == "data"
    # the minimal chain ends at the drop and includes the doomed send
    chain = [n.node_id for n in expl.chain]
    assert chain[-1] == expl.root.node_id
    assert any(n.name == "send" for n in expl.chain)
