"""Tests for the metrics registry."""

from repro.obs import MetricsRegistry


class TestCounter:
    def test_inc(self):
        reg = MetricsRegistry()
        c = reg.counter("hits")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")


class TestGauge:
    def test_tracks_last_and_extremes(self):
        g = MetricsRegistry().gauge("width")
        for v in (3, 7, 2):
            g.set(v)
        assert g.summary() == {"last": 2, "min": 2, "max": 7}

    def test_unset_gauge_summary(self):
        g = MetricsRegistry().gauge("width")
        assert g.summary() == {"last": None, "min": None, "max": None}


class TestHistogram:
    def test_streaming_stats(self):
        h = MetricsRegistry().histogram("branching")
        for v in (1, 2, 3, 10):
            h.record(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["total"] == 16.0
        assert s["min"] == 1 and s["max"] == 10
        assert s["mean"] == 4.0

    def test_power_of_two_buckets(self):
        h = MetricsRegistry().histogram("h")
        h.record(1)    # bucket 0: v <= 1
        h.record(2)    # bucket 1: 1 < v <= 2
        h.record(3)    # bucket 2: 2 < v <= 4
        h.record(4)    # bucket 2
        h.record(100)  # bucket 7: 64 < v <= 128
        assert h.buckets == {0: 1, 1: 1, 2: 2, 7: 1}

    def test_empty_histogram_mean_is_none(self):
        h = MetricsRegistry().histogram("h")
        assert h.mean is None
        assert h.summary()["count"] == 0


class TestRegistrySummary:
    def test_summary_flattens_and_sorts(self):
        reg = MetricsRegistry()
        reg.counter("z.count").inc(2)
        reg.gauge("a.width").set(5)
        reg.histogram("m.dist").record(1)
        summary = reg.summary()
        assert list(summary) == sorted(summary)
        assert summary["z.count"] == 2
        assert summary["a.width"]["last"] == 5
        assert summary["m.dist"]["count"] == 1

    def test_summary_is_json_friendly(self):
        import json

        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1.5)
        reg.histogram("h").record(3)
        json.dumps(reg.summary())
