"""Tests for the metrics registry."""

from repro.obs import MetricsRegistry


class TestCounter:
    def test_inc(self):
        reg = MetricsRegistry()
        c = reg.counter("hits")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")


class TestGauge:
    def test_tracks_last_and_extremes(self):
        g = MetricsRegistry().gauge("width")
        for v in (3, 7, 2):
            g.set(v)
        assert g.summary() == {"last": 2, "min": 2, "max": 7}

    def test_unset_gauge_summary(self):
        g = MetricsRegistry().gauge("width")
        assert g.summary() == {"last": None, "min": None, "max": None}


class TestHistogram:
    def test_streaming_stats(self):
        h = MetricsRegistry().histogram("branching")
        for v in (1, 2, 3, 10):
            h.record(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["total"] == 16.0
        assert s["min"] == 1 and s["max"] == 10
        assert s["mean"] == 4.0

    def test_power_of_two_buckets(self):
        h = MetricsRegistry().histogram("h")
        h.record(1)    # bucket 0: v <= 1
        h.record(2)    # bucket 1: 1 < v <= 2
        h.record(3)    # bucket 2: 2 < v <= 4
        h.record(4)    # bucket 2
        h.record(100)  # bucket 7: 64 < v <= 128
        assert h.buckets == {0: 1, 1: 1, 2: 2, 7: 1}

    def test_empty_histogram_mean_is_none(self):
        h = MetricsRegistry().histogram("h")
        assert h.mean is None
        assert h.summary()["count"] == 0


class TestHistogramQuantile:
    def _h(self):
        return MetricsRegistry().histogram("h")

    def test_empty_histogram_returns_none(self):
        h = self._h()
        assert h.quantile(0.5) is None
        assert h.quantile(0.0) is None
        assert h.quantile(1.0) is None

    def test_out_of_range_q_raises(self):
        import pytest

        h = self._h()
        h.record(1)
        for bad in (-0.01, 1.01, 2.0):
            with pytest.raises(ValueError):
                h.quantile(bad)
        # the endpoints themselves are valid
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 1.0

    def test_single_bucket_collapses_to_observed_range(self):
        # 5, 6, 7 all land in bucket 3 (4 < v <= 8); the bucket upper
        # bound (8) is clamped to the observed max, so every quantile
        # answers 7 — never a value the run did not produce
        h = self._h()
        for v in (5, 6, 7):
            h.record(v)
        for q in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert h.quantile(q) == 7.0

    def test_p99_exactly_on_bucket_boundary(self):
        # 99 samples of 1 (bucket 0) + one outlier of 16 (bucket 4):
        # rank = 0.99 * 100 = 99 lands *exactly* on bucket 0's
        # cumulative count, and the >= walk must resolve inside it —
        # the outlier only surfaces strictly above p99
        h = self._h()
        for _ in range(99):
            h.record(1)
        h.record(16)
        assert h.quantile(0.99) == 1.0
        assert h.quantile(0.991) == 16.0
        assert h.quantile(1.0) == 16.0

    def test_estimate_clamped_to_observed_extremes(self):
        # a lone 3 sits in bucket 2 (upper bound 4): the estimate is
        # clamped down to max=3 — never a value above what the run
        # produced.  With {10, 100} a tiny q answers 10's bucket
        # upper (16): an over-estimate, but still below the true max
        h = self._h()
        h.record(3)
        assert h.quantile(0.5) == 3.0
        h2 = self._h()
        for v in (10, 100):
            h2.record(v)
        assert h2.quantile(0.0) == 16.0
        assert h2.quantile(1.0) == 100.0


class TestRegistrySummary:
    def test_summary_flattens_and_sorts(self):
        reg = MetricsRegistry()
        reg.counter("z.count").inc(2)
        reg.gauge("a.width").set(5)
        reg.histogram("m.dist").record(1)
        summary = reg.summary()
        assert list(summary) == sorted(summary)
        assert summary["z.count"] == 2
        assert summary["a.width"]["last"] == 5
        assert summary["m.dist"]["count"] == 1

    def test_summary_is_json_friendly(self):
        import json

        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1.5)
        reg.histogram("h").record(3)
        json.dumps(reg.summary())
