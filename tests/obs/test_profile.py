"""Solver hot-path profiling and collapsed-stack export.

The profile's *counters* are deterministic — they must agree with the
evaluation-count discipline pinned by ``tests/core/test_solver_memo.py``
(one ``g`` and one limit check per node, ``f`` once per candidate) —
while the nanosecond columns are wall-clock and never compared.  The
disabled path is the pre-existing hot path: an untraced ``explore``
allocates no profile at all.
"""

from repro.channels import Channel
from repro.core import Description, SmoothSolutionSolver, combine
from repro.functions import chan, even_of, odd_of
from repro.obs import (
    NULL_TRACER,
    RingBufferSink,
    Tracer,
    collapsed_stacks,
    hotspots,
    hotspots_from_metrics,
    write_collapsed,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import SITE_ORDER, SolverProfile
from repro.obs.tracer import SpanRecord

B = Channel("b", alphabet={0, 2})
C = Channel("c", alphabet={1, 3})
D = Channel("d", alphabet={0, 1, 2, 3})


class _CountingFn:
    def __init__(self, inner):
        self.inner = inner
        self.calls = 0

    def __getattr__(self, attr):
        return getattr(self.inner, attr)

    def apply(self, t):
        self.calls += 1
        return self.inner.apply(t)


def counting_dfm():
    base = combine([
        Description(even_of(chan(D)), chan(B)),
        Description(odd_of(chan(D)), chan(C)),
    ], name="dfm")
    return Description(_CountingFn(base.lhs), _CountingFn(base.rhs),
                       name=base.name)


def traced_explore(depth=4):
    desc = counting_dfm()
    ring = RingBufferSink(capacity=100_000)
    solver = SmoothSolutionSolver.over_channels(
        desc, [B, C, D], tracer=Tracer([ring]))
    return desc, solver.explore(depth), ring


class TestProfileCounters:
    def test_counters_agree_with_pinned_evaluation_counts(self):
        """The profile is bookkeeping, not re-measurement: its site
        counters must equal the CountingFn ground truth that
        test_solver_memo pins."""
        desc, result, _ = traced_explore(4)
        prof = result.profile
        assert prof["g_evaluations"] == result.nodes_explored
        assert prof["g_evaluations"] == desc.rhs.calls
        assert prof["f_evaluations"] == desc.lhs.calls
        sites = prof["sites"]
        assert sites["rhs.apply"]["calls"] == result.nodes_explored
        assert sites["limit_report"]["calls"] == result.nodes_explored
        # f(root) once, then expand below the bound + probes at it
        assert sites["lhs.apply.root"]["calls"] == 1
        assert (sites["lhs.apply.root"]["calls"]
                + sites["lhs.apply.expand"]["calls"]
                + sites["lhs.apply.probe"]["calls"]) == desc.lhs.calls

    def test_counters_deterministic_across_runs(self):
        _, first, _ = traced_explore(4)
        _, second, _ = traced_explore(4)

        def calls(prof):
            return {name: v["calls"]
                    for name, v in prof["sites"].items()}
        assert calls(first.profile) == calls(second.profile)
        assert first.digest() == second.digest()

    def test_per_level_series_covers_the_exploration(self):
        _, result, _ = traced_explore(4)
        levels = result.profile["levels"]
        assert levels, "traced explore recorded no levels"
        assert [lv["depth"] for lv in levels] == \
            list(range(len(levels)))
        assert sum(lv["width"] for lv in levels) == \
            result.nodes_explored

    def test_untraced_explore_allocates_no_profile(self):
        desc = counting_dfm()
        solver = SmoothSolutionSolver.over_channels(desc, [B, C, D])
        result = solver.explore(4)
        assert result.profile == {}
        assert result.metrics == {}

    def test_null_tracer_matches_untraced(self):
        desc = counting_dfm()
        solver = SmoothSolutionSolver.over_channels(
            desc, [B, C, D], tracer=NULL_TRACER)
        result = solver.explore(4)
        assert result.profile == {}


class TestHotspots:
    def test_ranked_by_time_share(self):
        prof = SolverProfile()
        prof.add("rhs.apply", ns=100, calls=10)
        prof.add("limit_report", ns=300, calls=10)
        prof.add("cache.get", ns=100, calls=1)
        rows = hotspots(prof.summary())
        assert rows[0]["site"] == "limit_report"
        assert rows[0]["share"] == 0.6
        # equal-time sites fall back to the canonical order
        assert [r["site"] for r in rows[1:]] == \
            ["rhs.apply", "cache.get"]
        assert abs(sum(r["share"] for r in rows) - 1.0) < 1e-9

    def test_zero_time_runs_stay_stable(self):
        prof = SolverProfile()
        for site in reversed(SITE_ORDER):
            prof.add(site, ns=0)
        assert [r["site"] for r in hotspots(prof.summary())] == \
            list(SITE_ORDER)

    def test_empty_and_none_summaries(self):
        assert hotspots(None) == []
        assert hotspots({}) == []
        assert hotspots_from_metrics(None) == []
        assert hotspots_from_metrics({"other.metric": 3}) == []

    def test_metrics_round_trip(self):
        """to_metrics → registry summary → hotspots_from_metrics
        recovers exactly the rows hotspots() computes directly."""
        prof = SolverProfile()
        prof.add("rhs.apply", ns=500, calls=20)
        prof.add("lhs.apply.expand", ns=1500, calls=45)
        registry = MetricsRegistry()
        prof.to_metrics(registry)
        assert hotspots_from_metrics(registry.summary()) == \
            hotspots(prof.summary())

    def test_end_to_end_metrics_carry_the_sites(self):
        _, result, _ = traced_explore(3)
        rows = hotspots_from_metrics(result.metrics)
        by_site = {r["site"]: r for r in rows}
        assert by_site["rhs.apply"]["calls"] == result.nodes_explored


class TestCollapsedStacks:
    @staticmethod
    def span(name, track, start, dur, depth):
        return SpanRecord(name=name, category="solver", track=track,
                          start_ns=start, dur_ns=dur, depth=depth)

    def test_nesting_and_self_time(self):
        spans = [
            # exit order: children complete before their parents
            self.span("grand", "solver", 12, 5, 2),
            self.span("childA", "solver", 10, 30, 1),
            self.span("childB", "solver", 50, 20, 1),
            self.span("root", "solver", 0, 100, 0),
        ]
        folded = collapsed_stacks(spans)
        assert folded == {
            "solver;root": 50,
            "solver;root;childA": 25,
            "solver;root;childA;grand": 5,
            "solver;root;childB": 20,
        }
        # self times sum back to the root's total
        assert sum(folded.values()) == 100

    def test_siblings_merge_their_weights(self):
        spans = [
            self.span("work", "t", 0, 10, 1),
            self.span("work", "t", 20, 15, 1),
            self.span("root", "t", 0, 40, 0),
        ]
        folded = collapsed_stacks(spans)
        assert folded["t;root;work"] == 25
        assert folded["t;root"] == 15

    def test_tracks_fold_independently(self):
        spans = [
            self.span("a", "t1", 0, 10, 0),
            self.span("a", "t2", 0, 30, 0),
        ]
        folded = collapsed_stacks(spans)
        assert folded == {"t1;a": 10, "t2;a": 30}

    def test_clock_jitter_clamped_at_zero(self):
        # a child reported longer than its parent must not produce a
        # negative self-time
        spans = [
            self.span("child", "t", 0, 15, 1),
            self.span("root", "t", 0, 10, 0),
        ]
        folded = collapsed_stacks(spans)
        assert folded["t;root"] == 0
        assert folded["t;root;child"] == 15

    def test_events_are_ignored(self):
        from repro.obs.tracer import EventRecord

        records = [
            EventRecord(name="send", category="runtime", track="t",
                        ts_ns=5),
            self.span("root", "t", 0, 10, 0),
        ]
        assert collapsed_stacks(records) == {"t;root": 10}

    def test_write_collapsed_sorted_lines(self, tmp_path):
        spans = [
            self.span("b", "t", 20, 5, 0),
            self.span("a", "t", 0, 10, 0),
        ]
        path = tmp_path / "prof.folded"
        assert write_collapsed(spans, str(path)) == 2
        assert path.read_text() == "t;a 10\nt;b 5\n"

    def test_traced_explore_produces_foldable_spans(self, tmp_path):
        _, _, ring = traced_explore(3)
        folded = collapsed_stacks(list(ring.records))
        assert folded, "traced explore produced no spans"
        assert any(key.startswith("solver;") for key in folded)
