"""Divergence diffing and delta-debugging shrink of recorded runs."""

import pytest

from repro.channels.channel import Channel
from repro.core import Description, DescriptionSystem
from repro.faults import (
    DropFault,
    FaultPlan,
    replay_conformance_case,
    run_conformance,
)
from repro.functions import chan
from repro.functions.base import const_seq
from repro.kahn.agents import dfm_agent, source_agent
from repro.kahn.effects import Poll, Recv, Send
from repro.kahn.scheduler import FirstOracle, RandomOracle, run_network
from repro.obs import (
    Schedule,
    diff_runs,
    diff_schedules,
    shrink_schedule,
)
from repro.obs.diff import _ddmin
from repro.seq import FiniteSeq

B = Channel("b", alphabet={0, 2})
C = Channel("c", alphabet={1, 3})
D = Channel("d", alphabet={0, 1, 2, 3})


def dfm_agents():
    return {"eb": source_agent(B, [0, 2, 0, 2]),
            "dfm": dfm_agent(B, C, D)}


# -- black-hole livelock fixture (the shrink showcase) -----------------------

PAYLOAD = ["a", "b"]
OUT = Channel("out", alphabet=frozenset(PAYLOAD))
DATA = Channel("data",
               alphabet=frozenset((b, m) for b in (0, 1)
                                  for m in PAYLOAD))
ACK = Channel("ack", alphabet=frozenset({0, 1}))
PROTO_CHANNELS = [OUT, DATA, ACK]


def _sender(messages, retransmit_limit):
    bit = 0
    for m in messages:
        yield Send(DATA, (bit, m))
        attempts = 0
        while True:
            if (yield Poll(ACK)):
                if (yield Recv(ACK)) == bit:
                    break
                continue
            attempts += 1
            if retransmit_limit is not None \
                    and attempts > retransmit_limit:
                return
            yield Send(DATA, (bit, m))
        bit ^= 1


def _receiver():
    expected = 0
    while True:
        bit, message = yield Recv(DATA)
        yield Send(ACK, bit)
        if bit == expected:
            yield Send(OUT, message)
            expected ^= 1


def proto_agents(retransmit_limit=None):
    return {"sender": lambda: _sender(PAYLOAD, retransmit_limit),
            "receiver": _receiver}


def proto_spec() -> DescriptionSystem:
    return DescriptionSystem(
        [Description(chan(OUT), const_seq(FiniteSeq(PAYLOAD)),
                     name="out ⟵ payload")],
        channels=[OUT], name="service",
    )


def black_hole():
    """Unbounded certain loss on the data wire: a retransmission
    livelock for a sender that never gives up."""
    return FaultPlan(
        {DATA: DropFault(seed=0, p=1.0, max_consecutive_drops=None)},
        name="black-hole")


BLACK_HOLE_PLANS = {"black-hole": black_hole}


def record_livelock():
    report = run_conformance(
        "proto-blackhole", proto_agents(), PROTO_CHANNELS,
        proto_spec(), BLACK_HOLE_PLANS, seeds=[0], observe={OUT},
        max_steps=2000, watchdog_limit=200,
    )
    case = report.cases[0]
    assert case.outcome == "livelock"
    return case


class TestFailingCellRoundTrip:
    def test_livelock_cell_replays_to_same_verdict_and_digest(self):
        # the acceptance criterion end-to-end: a failing grid cell's
        # auto-attached schedule, strictly replayed, reproduces both
        # the verdict and the run digest bit-for-bit
        case = record_livelock()
        assert case.failed
        replayed = replay_conformance_case(
            case.schedule, proto_agents(), PROTO_CHANNELS,
            proto_spec(), BLACK_HOLE_PLANS, observe={OUT},
        )
        assert replayed.outcome == case.outcome == "livelock"
        assert replayed.result.digest() == \
            case.schedule.meta["digest"] == case.result.digest()
        assert replayed.result.watchdog_fired


class TestDiffRuns:
    def test_identical_runs(self):
        a = run_network(dfm_agents(), [B, C, D], RandomOracle(7))
        b = run_network(dfm_agents(), [B, C, D], RandomOracle(7))
        d = diff_runs(a, b)
        assert d.identical
        assert "identical" in d.summary()

    def test_different_seeds_diverge(self):
        plan_a = FaultPlan({B: DropFault(seed=1, p=0.5)}, name="p")
        plan_b = FaultPlan({B: DropFault(seed=2, p=0.5)}, name="p")
        a = run_network(dfm_agents(), [B, C, D], RandomOracle(7),
                        fault_plan=plan_a)
        b = run_network(dfm_agents(), [B, C, D], RandomOracle(7),
                        fault_plan=plan_b)
        d = diff_runs(a, b)
        assert not d.identical
        if d.divergence is not None:
            assert d.divergence.stream == "events"
            assert d.divergence.context_a or d.divergence.context_b

    def test_outcome_fields_compared(self):
        a = run_network(dfm_agents(), [B, C, D], RandomOracle(7))
        b = run_network(dfm_agents(), [B, C, D], RandomOracle(7),
                        max_steps=3)
        d = diff_runs(a, b)
        assert "quiescent" in d.outcome or "steps" in d.outcome


class TestDiffSchedules:
    def test_identical(self):
        r = run_network(dfm_agents(), [B, C, D], RandomOracle(7),
                        record=True)
        d = diff_schedules(r.schedule, r.schedule.copy())
        assert d.identical
        assert d.first is None

    def test_first_divergent_decision(self):
        a = run_network(dfm_agents(), [B, C, D], RandomOracle(7),
                        record=True).schedule
        b = a.copy()
        b.agent_picks[2] = ["other", ["other"]]
        d = diff_schedules(a, b)
        assert not d.identical
        assert d.first.stream == "agent_picks"
        assert d.first.index == 2
        assert "agent_picks[2]" in d.first.describe()

    def test_length_mismatch_reported(self):
        a = Schedule(agent_picks=[["x", ["x"]], ["y", ["y"]]])
        b = Schedule(agent_picks=[["x", ["x"]]])
        d = diff_schedules(a, b)
        assert d.first.index == 1
        assert d.first.b is None
        assert "B ended" in d.first.describe()


class TestDdmin:
    def test_minimizes_to_single_culprit(self):
        items = list(range(20))
        result = _ddmin(items, lambda sub: 13 in sub)
        assert result == [13]

    def test_minimizes_pair(self):
        items = list(range(16))
        result = _ddmin(items,
                        lambda sub: 3 in sub and 12 in sub)
        assert sorted(result) == [3, 12]

    def test_empty_when_anything_fails(self):
        assert _ddmin(list(range(8)), lambda sub: True) == []


class TestShrinkSchedule:
    def test_rejects_non_failing_schedule(self):
        r = run_network(dfm_agents(), [B, C, D], RandomOracle(7),
                        record=True)
        with pytest.raises(ValueError):
            shrink_schedule(r.schedule, lambda s: False)

    def test_shrinks_livelock_to_minimum(self):
        case = record_livelock()
        schedule = case.schedule
        recorded_outcome = case.outcome

        def still_livelocks(candidate):
            replayed = replay_conformance_case(
                candidate, proto_agents(), PROTO_CHANNELS,
                proto_spec(), BLACK_HOLE_PLANS, observe={OUT},
                fallback=FirstOracle(),
            )
            return replayed.outcome == recorded_outcome

        small = shrink_schedule(schedule, still_livelocks)
        assert len(small) < len(schedule)
        assert small.meta["shrunk_from"] == len(schedule)
        assert still_livelocks(small)
        # the black hole livelocks under *any* schedule, and the
        # shrinker proves it: no recorded decision is needed
        assert len(small) == 0

    def test_shrink_preserves_named_decision(self):
        # a synthetic predicate that needs one specific agent pick:
        # the shrinker must keep exactly that entry
        schedule = Schedule(
            agent_picks=[[f"a{i}", [f"a{i}"]] for i in range(12)])

        def needs_a7(candidate):
            return any(pick[0] == "a7"
                       for pick in candidate.agent_picks)

        small = shrink_schedule(schedule, needs_a7)
        assert small.agent_picks == [["a7", ["a7"]]]

    def test_shrunk_schedule_replays_leniently(self):
        case = record_livelock()

        def still_livelocks(candidate):
            return replay_conformance_case(
                candidate, proto_agents(), PROTO_CHANNELS,
                proto_spec(), BLACK_HOLE_PLANS, observe={OUT},
                fallback=FirstOracle(),
            ).outcome == "livelock"

        small = shrink_schedule(case.schedule, still_livelocks)
        replayed = replay_conformance_case(
            small, proto_agents(), PROTO_CHANNELS, proto_spec(),
            BLACK_HOLE_PLANS, observe={OUT}, fallback=FirstOracle(),
        )
        assert replayed.outcome == "livelock"
        assert replayed.result.watchdog_fired
