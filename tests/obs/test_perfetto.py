"""Tests for the Chrome-trace-event / Perfetto exporter."""

import json

from repro.obs import (
    RingBufferSink,
    Tracer,
    to_chrome_trace,
    write_chrome_trace,
)


def recorded_run():
    sink = RingBufferSink()
    tracer = Tracer([sink])
    with tracer.span("explore", category="solver", track="solver",
                     depth=3):
        tracer.event("prune", category="solver", track="solver")
    with tracer.span("step", category="runtime", track="sender"):
        pass
    return sink.records


class TestExport:
    def test_document_shape(self):
        doc = to_chrome_trace(recorded_run())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert doc["displayTimeUnit"] == "ms"
        assert doc["traceEvents"]

    def test_spans_become_complete_events(self):
        doc = to_chrome_trace(recorded_run())
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"explore", "step"}
        for e in complete:
            assert e["ts"] >= 0 and e["dur"] >= 0
            assert e["pid"] == 1 and e["tid"] >= 1

    def test_instants_become_i_events(self):
        doc = to_chrome_trace(recorded_run())
        [instant] = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert instant["name"] == "prune"
        assert instant["s"] == "t"

    def test_tracks_become_named_threads(self):
        doc = to_chrome_trace(recorded_run(), process_name="demo")
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert {"demo", "solver", "sender"} <= names
        # records on the same track share a tid
        spans = {e["name"]: e["tid"] for e in doc["traceEvents"]
                 if e["ph"] in ("X", "i")}
        assert spans["explore"] == spans["prune"]
        assert spans["explore"] != spans["step"]

    def test_timestamps_are_microseconds(self):
        records = recorded_run()
        doc = to_chrome_trace(records)
        span = next(e for e in doc["traceEvents"]
                    if e.get("name") == "explore")
        source = next(r for r in records
                      if getattr(r, "name", "") == "explore")
        assert span["ts"] == source.start_ns / 1000.0

    def test_output_is_json_serializable(self):
        json.dumps(to_chrome_trace(recorded_run()))

    def test_write_chrome_trace_roundtrip(self, tmp_path):
        path = tmp_path / "run.perfetto.json"
        count = write_chrome_trace(recorded_run(), str(path))
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == count > 0
