"""Tests for repro.obs.bench — the benchmark trajectory and its
regression gate.

The gate's promises: an empty trajectory seeds instead of failing, the
baseline is a median over context-matching entries only, tolerances
are per-row, ``equal`` rows brook no drift, and missing rows warn
unless ``strict``.
"""

import json

from repro.obs.bench import (
    TRACKED_ROWS,
    TrackedRow,
    append_history,
    baseline_for,
    check,
    extract_tracked,
    load_history,
)

ROWS = (
    TrackedRow("X", "depth"),
    TrackedRow("X", "nodes", "equal"),
    TrackedRow("X", "speedup", "higher", rel_tol=0.2),
    TrackedRow("Y", "overhead", "lower", rel_tol=0.1, abs_tol=0.5),
)


def _core(depth=6, nodes=100, speedup=4.0, overhead=1.0):
    return {"generated_at": "t", "python": "3.11",
            "platform": "linux", "rows": [
                {"experiment": "X", "label": "depth", "value": depth},
                {"experiment": "X", "label": "nodes", "value": nodes},
                {"experiment": "X", "label": "speedup",
                 "value": speedup},
                {"experiment": "Y", "label": "overhead",
                 "value": overhead},
            ]}


def _history(path, *cores, sha="s"):
    for i, core in enumerate(cores):
        append_history(core, path, sha=f"{sha}{i}", tracked=ROWS)
    return load_history(path)


class TestExtract:
    def test_pulls_tracked_rows_only(self):
        core = _core()
        core["rows"].append({"experiment": "X", "label": "noise",
                             "value": 9})
        got = extract_tracked(core, ROWS)
        assert got == {"X|depth": 6.0, "X|nodes": 100.0,
                       "X|speedup": 4.0, "Y|overhead": 1.0}

    def test_skips_non_numeric_and_non_finite(self):
        core = _core()
        core["rows"][2]["value"] = float("nan")
        core["rows"][3]["value"] = True
        got = extract_tracked(core, ROWS)
        assert "X|speedup" not in got
        assert "Y|overhead" not in got

    def test_default_tracked_rows_cover_roadmap_targets(self):
        keys = {t.key for t in TRACKED_ROWS}
        assert "S33-MEMO|speedup" in keys
        assert "EXT-CACHE|speedup" in keys
        assert "EXT-FLEET|supervision overhead (%)" in keys
        assert "EXT-OBS|overhead ratio" in keys


class TestHistory:
    def test_append_and_load_roundtrip(self, tmp_path):
        path = tmp_path / "h.jsonl"
        entry = append_history(_core(), path, sha="abc",
                               tracked=ROWS)
        assert entry["sha"] == "abc"
        loaded = load_history(path)
        assert loaded == [entry]

    def test_missing_file_is_empty_trajectory(self, tmp_path):
        assert load_history(tmp_path / "absent.jsonl") == []

    def test_malformed_lines_skipped(self, tmp_path):
        path = tmp_path / "h.jsonl"
        append_history(_core(), path, tracked=ROWS)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("{truncated\n")
            fh.write(json.dumps({"no": "rows"}) + "\n")
        assert len(load_history(path)) == 1


class TestBaseline:
    def test_median_of_window(self, tmp_path):
        path = tmp_path / "h.jsonl"
        hist = _history(path, _core(speedup=2.0), _core(speedup=8.0),
                        _core(speedup=4.0))
        current = extract_tracked(_core(), ROWS)
        assert baseline_for(hist, "X|speedup", current, ROWS) == 4.0

    def test_context_mismatch_excluded(self, tmp_path):
        # depth-5 entries must not pollute a depth-6 baseline
        path = tmp_path / "h.jsonl"
        hist = _history(path, _core(depth=5, speedup=100.0),
                        _core(depth=6, speedup=4.0))
        current = extract_tracked(_core(depth=6), ROWS)
        assert baseline_for(hist, "X|speedup", current, ROWS) == 4.0

    def test_window_bounds_lookback(self, tmp_path):
        path = tmp_path / "h.jsonl"
        cores = [_core(speedup=v) for v in (100.0, 3.0, 4.0, 5.0)]
        hist = _history(path, *cores)
        current = extract_tracked(_core(), ROWS)
        assert baseline_for(hist, "X|speedup", current, ROWS,
                            window=3) == 4.0

    def test_no_history_is_none(self):
        current = extract_tracked(_core(), ROWS)
        assert baseline_for([], "X|speedup", current, ROWS) is None


class TestCheck:
    def test_empty_history_seeds_and_passes(self):
        result = check(_core(), [], tracked=ROWS)
        assert result.ok
        assert all(v.status == "no-baseline"
                   for v in result.verdicts)
        assert "SEEDING" in result.describe()
        assert result.describe().endswith("bench-check: PASS")

    def test_within_tolerance_passes(self, tmp_path):
        hist = _history(tmp_path / "h.jsonl", _core())
        result = check(_core(speedup=3.3), hist, tracked=ROWS)
        assert result.ok            # 3.3 >= 4.0 * (1 - 0.2)

    def test_higher_row_regresses_below_slack(self, tmp_path):
        hist = _history(tmp_path / "h.jsonl", _core())
        result = check(_core(speedup=3.0), hist, tracked=ROWS)
        assert not result.ok
        assert [v.key for v in result.regressions] == ["X|speedup"]
        assert "REGRESS" in result.describe()
        assert "FAIL" in result.describe()

    def test_lower_row_regresses_above_slack(self, tmp_path):
        hist = _history(tmp_path / "h.jsonl", _core())
        ok = check(_core(overhead=1.5), hist, tracked=ROWS)
        assert ok.ok                # 1.5 <= 1.0 * 1.1 + 0.5
        bad = check(_core(overhead=1.7), hist, tracked=ROWS)
        assert not bad.ok

    def test_equal_row_brooks_no_drift(self, tmp_path):
        hist = _history(tmp_path / "h.jsonl", _core())
        result = check(_core(nodes=101), hist, tracked=ROWS)
        assert [v.key for v in result.regressions] == ["X|nodes"]

    def test_missing_row_warns_unless_strict(self, tmp_path):
        hist = _history(tmp_path / "h.jsonl", _core())
        core = _core()
        core["rows"] = [r for r in core["rows"]
                        if r["label"] != "overhead"]
        lax = check(core, hist, tracked=ROWS)
        assert lax.ok
        assert [v.key for v in lax.missing] == ["Y|overhead"]
        strict = check(core, hist, tracked=ROWS, strict=True)
        assert not strict.ok

    def test_context_rows_not_gated(self):
        result = check(_core(), [], tracked=ROWS)
        assert "X|depth" not in [v.key for v in result.verdicts]

    def test_improvements_always_pass(self, tmp_path):
        hist = _history(tmp_path / "h.jsonl", _core())
        result = check(_core(speedup=40.0, overhead=0.1), hist,
                       tracked=ROWS)
        assert result.ok
