"""Tests for the structured tracer and its sinks."""

import io
import json

import pytest

from repro.obs import (
    NULL_TRACER,
    ConsoleSink,
    EventRecord,
    JsonlSink,
    NullTracer,
    RingBufferSink,
    SpanRecord,
    Tracer,
)


def make_tracer():
    sink = RingBufferSink()
    return Tracer([sink]), sink


class TestSpans:
    def test_span_records_name_category_track(self):
        tracer, sink = make_tracer()
        with tracer.span("work", category="solver", track="t1", n=3):
            pass
        [rec] = sink.records
        assert isinstance(rec, SpanRecord)
        assert rec.name == "work"
        assert rec.category == "solver"
        assert rec.track == "t1"
        assert rec.args == {"n": 3}

    def test_span_duration_is_nonnegative_monotonic(self):
        tracer, sink = make_tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = sink.records
        assert inner.dur_ns >= 0 and outer.dur_ns >= 0
        assert outer.start_ns <= inner.start_ns
        assert (outer.start_ns + outer.dur_ns
                >= inner.start_ns + inner.dur_ns)

    def test_nesting_depth_per_track(self):
        tracer, sink = make_tracer()
        with tracer.span("outer", track="a"):
            with tracer.span("inner", track="a"):
                pass
            with tracer.span("other-track", track="b"):
                pass
        by_name = {r.name: r for r in sink.records}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        assert by_name["other-track"].depth == 0

    def test_annotate_attaches_late_args(self):
        tracer, sink = make_tracer()
        with tracer.span("work") as span:
            span.annotate(result=42)
        assert sink.records[0].args["result"] == 42

    def test_span_emitted_on_exception(self):
        tracer, sink = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert sink.records[0].name == "doomed"

    def test_events_are_instants(self):
        tracer, sink = make_tracer()
        tracer.event("tick", category="runtime", track="x", k="v")
        [rec] = sink.records
        assert isinstance(rec, EventRecord)
        assert rec.ts_ns >= 0
        assert rec.args == {"k": "v"}

    def test_timestamps_increase(self):
        tracer, sink = make_tracer()
        tracer.event("a")
        tracer.event("b")
        a, b = sink.records
        assert b.ts_ns >= a.ts_ns


class TestNullTracer:
    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert NullTracer().enabled is False
        assert Tracer().enabled is True

    def test_noop_span_and_event(self):
        # must not raise, must not record anywhere
        with NULL_TRACER.span("x", category="c", a=1) as s:
            s.annotate(b=2)
        NULL_TRACER.event("y", arg="z")

    def test_null_span_is_shared(self):
        s1 = NULL_TRACER.span("a")
        s2 = NULL_TRACER.span("b")
        assert s1 is s2


class TestRingBufferSink:
    def test_capacity_keeps_most_recent(self):
        sink = RingBufferSink(capacity=3)
        tracer = Tracer([sink])
        for i in range(10):
            tracer.event(f"e{i}")
        assert len(sink) == 3
        assert [r.name for r in sink] == ["e7", "e8", "e9"]

    def test_clear(self):
        sink = RingBufferSink()
        Tracer([sink]).event("e")
        sink.clear()
        assert len(sink) == 0


class TestJsonlSink:
    def test_writes_parseable_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        tracer = Tracer([sink])
        with tracer.span("s", category="solver", n=1):
            tracer.event("e", category="runtime", who="me")
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2 == sink.count
        event, span = (json.loads(line) for line in lines)
        assert event["kind"] == "event" and event["name"] == "e"
        assert span["kind"] == "span" and span["args"] == {"n": 1}

    def test_nonserializable_args_fall_back_to_repr(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        Tracer([sink]).event("e", obj=object())
        sink.close()
        rec = json.loads(path.read_text())
        assert rec["args"]["obj"].startswith("<object object")

    def test_closed_sink_rejects_records(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "t.jsonl"))
        sink.close()
        with pytest.raises(ValueError):
            Tracer([sink]).event("late")


class TestConsoleSink:
    def test_pretty_prints_with_indent(self):
        buffer = io.StringIO()
        tracer = Tracer([ConsoleSink(stream=buffer)])
        with tracer.span("outer", track="a"):
            with tracer.span("inner", track="a", n=1):
                tracer.event("tick", track="a")
        out = buffer.getvalue()
        assert "outer" in out and "inner" in out and "tick" in out
        assert "n=1" in out

    def test_category_filter(self):
        buffer = io.StringIO()
        sink = ConsoleSink(stream=buffer, categories={"solver"})
        tracer = Tracer([sink])
        tracer.event("keep", category="solver")
        tracer.event("skip", category="runtime")
        out = buffer.getvalue()
        assert "keep" in out and "skip" not in out
