"""Tests for repro.obs.htmlreport — the self-contained flight-deck
artifact.

The page must be deterministic for a given report (CI artifact diffs),
carry its machine-readable twin in the ``#metrics`` script block, and
stay a single self-contained file (no external assets).
"""

import json
import re

from repro import par
from repro.obs.htmlreport import render_html_report, write_html_report
from repro.obs.telemetry import grid_metrics_summary


def _report():
    return par.run_conformance_parallel("dfm", seeds=[0], workers=1)


class TestRenderHtmlReport:
    def test_page_structure(self):
        report = _report()
        html = render_html_report(report)
        assert html.startswith("<!DOCTYPE html>")
        assert html.rstrip().endswith("</html>")
        assert "Grid flight deck" in html
        assert "dfm" in html
        # one row per cell plus the header
        assert html.count('class="outcome-conforms"') == \
            len(report.cases)

    def test_no_external_assets(self):
        html = render_html_report(_report())
        assert "http://" not in html and "https://" not in html
        assert "<link" not in html and "src=" not in html

    def test_deterministic_for_same_report(self):
        report = _report()
        assert render_html_report(report) == \
            render_html_report(report)

    def test_embedded_metrics_json_parses(self):
        report = _report()
        summary = grid_metrics_summary(report)
        html = render_html_report(report, metrics_summary=summary,
                                  meta={"scenario": "dfm"})
        m = re.search(
            r'<script type="application/json" id="metrics">\n'
            r"(.*?)\n</script>", html, re.S)
        assert m, "metrics script block missing"
        doc = json.loads(m.group(1).replace("<\\/", "</"))
        assert doc["counters"]["grid.cells"] == len(report.cases)
        assert doc["meta"]["scenario"] == "dfm"

    def test_script_block_is_inert(self):
        # `</` inside the JSON must be escaped or it would close the
        # script element mid-payload
        report = _report()
        html = render_html_report(
            report, metrics_summary={"weird</script>": 1})
        inner = html.split('id="metrics">')[1]
        payload = inner.split("</script>")[0]
        assert "</" not in payload.replace("<\\/", "")

    def test_final_status_table(self):
        from repro.obs.telemetry import FleetStatus

        status = FleetStatus(total=3, scenario="dfm")
        status.on_complete("conforms", 0.1)
        html = render_html_report(_report(),
                                  status=status.snapshot())
        assert "Final status" in html
        assert "records_streamed" in html

    def test_histogram_bars(self):
        report = _report()
        summary = grid_metrics_summary(report)
        html = render_html_report(report, metrics_summary=summary)
        if any(isinstance(v, dict) and "buckets" in v
               for v in summary.values()):
            assert 'class="bar"' in html
            assert "p50" in html

    def test_write_roundtrip(self, tmp_path):
        path = tmp_path / "r.html"
        text = write_html_report(_report(), str(path))
        assert path.read_text(encoding="utf-8") == text


class _HostileCase:
    plan = "<b>bold-plan</b>"
    seed = 7
    outcome = "conforms"
    elapsed_s = 0.001
    schedule = None


class _HostileReport:
    network = '<script>alert("net")</script>'
    cases = [_HostileCase()]
    genuine_failures = []
    cached_cases = []
    fleet_stats = {}
    wall_clock_s = 0.0


class TestHostileNames:
    """Scenario/plan/channel names are user-controlled strings; none
    of them may reach the page as live markup."""

    def test_names_are_escaped_everywhere(self):
        html = render_html_report(
            _HostileReport(),
            meta={"scenario": "<i>sly</i>"})
        assert "<b>bold-plan</b>" not in html
        assert "&lt;b&gt;bold-plan&lt;/b&gt;" in html
        assert '<script>alert("net")</script>' not in html
        assert "<i>sly</i>" not in html
        # the only script element is the (absent) metrics block
        assert html.count("<script") == 0

    def test_hostile_metric_names_stay_out_of_markup(self):
        summary = {
            "chan.<b>wire</b>.depth": 3,
            "evil</script><b>boom": {"buckets": {"0": 1}, "count": 1,
                                     "total": 1.0, "min": 1, "max": 1,
                                     "mean": 1.0},
        }
        html = render_html_report(_HostileReport(),
                                  metrics_summary=summary)
        assert "<b>wire</b>" not in html
        assert "<b>boom" not in html
        # exactly one script element: the inert metrics block
        assert html.count("<script") == 1

    def test_json_blob_neutralized_but_lossless(self):
        summary = {"evil</script><b>x": 1}
        html = render_html_report(_HostileReport(),
                                  metrics_summary=summary)
        payload = html.split('id="metrics">')[1].split("</script>")[0]
        assert "<" not in payload
        doc = json.loads(payload)
        # <-escaping round-trips to the exact original name
        assert doc["counters"]["evil</script><b>x"] == 1
