"""Tests for repro.obs.exposition — Prometheus text and JSON formats.

The exposition's one hard promise: every number is copied from the
summary, never recomputed, so the text always sums consistently with
the registry it was scraped from (``+Inf`` bucket == ``_count`` ==
``count``).
"""

from repro.obs import MetricsRegistry
from repro.obs.exposition import (
    prometheus_name,
    to_json_exposition,
    to_prometheus_text,
    write_json_exposition,
    write_prometheus_text,
)


def _sample_summary():
    reg = MetricsRegistry()
    reg.counter("solver.nodes_expanded").inc(7)
    reg.gauge("queue.depth").set(3)
    reg.gauge("queue.depth").set(9)
    h = reg.histogram("solver.branching")
    for v in (1, 2, 3, 10):
        h.record(v)
    return reg.summary()


class TestPrometheusName:
    def test_dots_collapse_to_underscores(self):
        assert prometheus_name("solver.nodes") == \
            "repro_solver_nodes"

    def test_namespace_optional(self):
        assert prometheus_name("a.b", namespace="") == "a_b"

    def test_illegal_leading_char_guarded(self):
        name = prometheus_name("0weird", namespace="")
        assert name[0] not in "0123456789"


class TestPrometheusText:
    def test_counter_family(self):
        text = to_prometheus_text({"hits": 5})
        assert "# TYPE repro_hits counter" in text
        assert "repro_hits 5" in text

    def test_gauge_family_with_extremes(self):
        text = to_prometheus_text(_sample_summary())
        assert "# TYPE repro_queue_depth gauge" in text
        assert "repro_queue_depth 9" in text
        assert "repro_queue_depth_min 3" in text
        assert "repro_queue_depth_max 9" in text

    def test_histogram_buckets_cumulative_and_consistent(self):
        summary = _sample_summary()
        text = to_prometheus_text(summary)
        lines = text.splitlines()
        buckets = [l for l in lines
                   if l.startswith("repro_solver_branching_bucket")]
        # samples 1,2,3,10 land in 2^k buckets 0,1,2,4 (cumulative)
        assert buckets == [
            'repro_solver_branching_bucket{le="1"} 1',
            'repro_solver_branching_bucket{le="2"} 2',
            'repro_solver_branching_bucket{le="4"} 3',
            'repro_solver_branching_bucket{le="16"} 4',
            'repro_solver_branching_bucket{le="+Inf"} 4',
        ]
        # +Inf == _count == summary count: copied, not recomputed
        count = summary["solver.branching"]["count"]
        assert f"repro_solver_branching_count {count}" in lines
        assert buckets[-1].endswith(f" {count}")
        assert "repro_solver_branching_sum 16" in lines

    def test_histogram_quantile_rows(self):
        text = to_prometheus_text(_sample_summary())
        assert 'repro_solver_branching{quantile="0.5"} 2' in text
        assert 'repro_solver_branching{quantile="0.9"} 10' in text
        assert 'repro_solver_branching{quantile="0.99"} 10' in text

    def test_families_sorted_and_newline_terminated(self):
        text = to_prometheus_text(_sample_summary())
        assert text.endswith("\n")
        type_lines = [l for l in text.splitlines()
                      if l.startswith("# TYPE")]
        assert type_lines == sorted(type_lines)

    def test_extra_labels_on_every_sample(self):
        text = to_prometheus_text({"hits": 5},
                                  extra_labels={"grid": "dfm"})
        assert 'repro_hits{grid="dfm"} 5' in text

    def test_extra_labels_compose_with_le(self):
        summary = _sample_summary()
        text = to_prometheus_text(summary,
                                  extra_labels={"grid": "dfm"})
        assert ('repro_solver_branching_bucket'
                '{grid="dfm",le="1"} 1') in text

    def test_golden_counter_only(self):
        text = to_prometheus_text({"b": 2, "a": 1})
        assert text == ("# TYPE repro_a counter\n"
                        "repro_a 1\n"
                        "# TYPE repro_b counter\n"
                        "repro_b 2\n")


class TestJsonExposition:
    def test_classifies_by_shape(self):
        doc = to_json_exposition(_sample_summary())
        assert doc["counters"]["solver.nodes_expanded"] == 7
        assert doc["gauges"]["queue.depth"]["last"] == 9
        hist = doc["histograms"]["solver.branching"]
        assert hist["count"] == 4
        assert hist["p50"] == 2 and hist["p99"] == 10

    def test_meta_rides_along(self):
        doc = to_json_exposition({}, meta={"scenario": "dfm"})
        assert doc["meta"] == {"scenario": "dfm"}

    def test_numbers_copied_verbatim(self):
        summary = _sample_summary()
        doc = to_json_exposition(summary)
        assert doc["histograms"]["solver.branching"] == \
            summary["solver.branching"]


class TestWriters:
    def test_write_prometheus_text(self, tmp_path):
        path = tmp_path / "m.prom"
        text = write_prometheus_text({"hits": 1}, str(path))
        assert path.read_text(encoding="utf-8") == text

    def test_write_json_exposition(self, tmp_path):
        import json

        path = tmp_path / "m.json"
        doc = write_json_exposition(_sample_summary(), str(path),
                                    meta={"digest": "abc"})
        assert json.loads(path.read_text(encoding="utf-8")) == doc
