"""JsonlSink flush policy: a killed writer leaves a parseable prefix."""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.obs import JsonlSink, Tracer


def test_flush_every_validates():
    with pytest.raises(ValueError):
        JsonlSink(os.devnull, flush_every=0)


def test_default_flushes_each_record(tmp_path):
    path = tmp_path / "t.jsonl"
    sink = JsonlSink(str(path))
    tracer = Tracer([sink])
    tracer.event("one", category="test", track="t")
    tracer.event("two", category="test", track="t")
    # NOT closed: the default flush_every=1 already pushed both lines
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    assert all(json.loads(line) for line in lines)


def test_batched_flush_holds_back_partial_batch(tmp_path):
    path = tmp_path / "t.jsonl"
    sink = JsonlSink(str(path), flush_every=5)
    tracer = Tracer([sink])
    for i in range(7):
        tracer.event(f"e{i}", category="test", track="t")
    # 7 records, batch of 5: exactly one flush so far
    assert len(path.read_text().splitlines()) == 5
    sink.close()
    assert len(path.read_text().splitlines()) == 7


_WRITER = textwrap.dedent("""
    import os
    from repro.obs import JsonlSink, Tracer

    sink = JsonlSink({path!r}, flush_every={flush_every})
    tracer = Tracer([sink])
    for i in range({records}):
        tracer.event(f"e{{i}}", category="test", track="t")
    os._exit(1)   # die without closing: no atexit, no __del__
""")


def _run_writer(path, flush_every, records):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.run(
        [sys.executable, "-c",
         _WRITER.format(path=str(path), flush_every=flush_every,
                        records=records)],
        env=env, capture_output=True, text=True, timeout=60,
    )
    assert proc.returncode == 1, proc.stderr


def test_killed_writer_leaves_parseable_prefix(tmp_path):
    path = tmp_path / "crash.jsonl"
    _run_writer(path, flush_every=1, records=9)
    lines = path.read_text().splitlines()
    assert len(lines) == 9  # every record survived the kill
    names = [json.loads(line)["name"] for line in lines]
    assert names == [f"e{i}" for i in range(9)]


def test_killed_writer_batched_loses_only_the_tail(tmp_path):
    path = tmp_path / "crash.jsonl"
    _run_writer(path, flush_every=5, records=7)
    lines = path.read_text().splitlines()
    assert len(lines) == 5  # the unflushed tail (2 records) is lost
    for line in lines:
        json.loads(line)  # the prefix is valid JSONL throughout
