"""End-to-end: the solver, runtime, and fault layers emit the spans,
events, and metrics the observability layer promises."""

import pytest

from repro.channels import Channel
from repro.core import Description, SmoothSolutionSolver, combine
from repro.faults import (
    DropFault,
    FaultPlan,
    RestartPolicy,
    run_conformance,
    run_supervised,
)
from repro.functions import chan, even_of, odd_of
from repro.kahn.agents import dfm_agent, source_agent
from repro.kahn.effects import Recv, Send
from repro.kahn.scheduler import RandomOracle, run_network
from repro.obs import RingBufferSink, Tracer

B = Channel("b", alphabet={0, 2})
C = Channel("c", alphabet={1, 3})
D = Channel("d", alphabet={0, 1, 2, 3})


def dfm():
    return combine([
        Description(even_of(chan(D)), chan(B)),
        Description(odd_of(chan(D)), chan(C)),
    ], name="dfm")


def make_tracer():
    sink = RingBufferSink()
    return Tracer([sink]), sink


def names(sink):
    return {r.name for r in sink}


def categories(sink):
    return {r.category for r in sink}


class TestSolverInstrumentation:
    def test_spans_events_and_metrics(self):
        tracer, sink = make_tracer()
        solver = SmoothSolutionSolver.over_channels(
            dfm(), [B, C, D], tracer=tracer)
        result = solver.explore(3)
        assert {"solver.explore", "solver.level",
                "solver.prune"} <= names(sink)
        assert categories(sink) == {"solver"}
        m = result.metrics
        assert m["solver.nodes_expanded"] == result.nodes_explored
        assert m["solver.finite_solutions"] == \
            len(result.finite_solutions)
        assert m["solver.candidates_pruned"] > 0
        assert m["solver.branching"]["count"] > 0

    def test_accept_events_match_solutions(self):
        tracer, sink = make_tracer()
        solver = SmoothSolutionSolver.over_channels(
            dfm(), [B, C, D], tracer=tracer)
        result = solver.explore(2)
        accepts = [r for r in sink if r.name == "solver.accept"]
        assert len(accepts) == len(result.finite_solutions)

    def test_truncation_emits_event(self):
        tracer, sink = make_tracer()
        solver = SmoothSolutionSolver.over_channels(
            dfm(), [B, C, D], tracer=tracer)
        result = solver.explore(6, max_nodes=10)
        assert result.truncated
        [ev] = [r for r in sink if r.name == "solver.truncate"]
        assert "node budget" in ev.args["reason"]

    def test_untraced_solver_has_empty_metrics(self):
        result = SmoothSolutionSolver.over_channels(
            dfm(), [B, C, D]).explore(3)
        assert result.metrics == {}


class TestRuntimeInstrumentation:
    def network(self):
        return {"eb": source_agent(B, [0, 2]),
                "dfm": dfm_agent(B, C, D)}

    def test_scheduler_and_runtime_events(self):
        tracer, sink = make_tracer()
        result = run_network(self.network(), [B, C, D],
                             RandomOracle(0), max_steps=100,
                             tracer=tracer)
        assert {"runtime.run", "step", "oracle.pick_agent",
                "send"} <= names(sink)
        assert {"scheduler", "runtime"} <= categories(sink)
        picks = [r for r in sink if r.name == "oracle.pick_agent"]
        assert all(r.args["chosen"] in ("eb", "dfm") for r in picks)
        m = result.metrics
        assert m["oracle.agent_picks"] == len(picks)
        assert m["channel.sends.b"] == 2

    def test_step_spans_land_on_agent_tracks(self):
        tracer, sink = make_tracer()
        run_network(self.network(), [B, C, D], RandomOracle(0),
                    max_steps=100, tracer=tracer)
        tracks = {r.track for r in sink if r.name == "step"}
        assert tracks == {"eb", "dfm"}

    def test_block_and_halt_events(self):
        tracer, sink = make_tracer()
        run_network(self.network(), [B, C, D], RandomOracle(0),
                    max_steps=100, tracer=tracer)
        assert "agent.halt" in names(sink)

    def test_agent_failure_event(self):
        def crasher():
            yield Send(B, 0)
            raise ValueError("kaput")

        tracer, sink = make_tracer()
        result = run_network({"crash": crasher()}, [B],
                             RandomOracle(0), max_steps=10,
                             tracer=tracer)
        assert result.failed_agents == ["crash"]
        [ev] = [r for r in sink if r.name == "agent.fail"]
        assert "kaput" in ev.args["error"]
        assert result.metrics["agent.failures"] == 1

    def test_untraced_run_has_empty_metrics(self):
        result = run_network(self.network(), [B, C, D],
                             RandomOracle(0), max_steps=100)
        assert result.metrics == {}


class TestFaultInstrumentation:
    def test_fault_send_events_classify_actions(self):
        def sender():
            for _ in range(8):
                yield Send(B, 0)

        tracer, sink = make_tracer()
        plan = FaultPlan(
            {B: DropFault(seed=1, p=0.5, max_consecutive_drops=2)},
            name="lossy")
        run_network({"s": sender()}, [B], RandomOracle(0),
                    max_steps=50, fault_plan=plan, tracer=tracer)
        fault_events = [r for r in sink if r.name == "fault.send"]
        assert fault_events
        actions = {r.args["action"] for r in fault_events}
        assert actions <= {"pass", "drop", "hold", "duplicate",
                           "corrupt", "perturb"}
        assert "drop" in actions  # p=0.5 over 8 sends, seeded
        assert all(r.track == "faults" for r in fault_events)

    def test_supervision_restart_events(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] <= 2:
                raise RuntimeError("flaky start")
            yield Send(B, 0)

        tracer, sink = make_tracer()
        result = run_supervised(
            {"flaky": flaky}, [B], RandomOracle(0), max_steps=200,
            policy=RestartPolicy(max_restarts=3, backoff_initial=1),
            tracer=tracer)
        assert result.restarts["flaky"] == 2
        restarts = [r for r in sink if r.name == "supervise.restart"]
        assert [r.args["restart"] for r in restarts] == [1, 2]
        assert result.metrics["supervise.restarts.flaky"] == 2

    def test_watchdog_event_carries_diagnosis(self):
        def spinner():
            while True:
                got = yield Recv(C)
                del got

        def feeder():
            while True:
                yield Send(B, 0)

        tracer, sink = make_tracer()
        plan = FaultPlan(
            {B: DropFault(seed=0, p=1.0,
                          max_consecutive_drops=None)},
            name="black-hole")
        result = run_supervised(
            {"spin": feeder, "wait": spinner}, [B, C],
            RandomOracle(1), max_steps=10_000, fault_plan=plan,
            watchdog_limit=50, tracer=tracer)
        assert result.watchdog_fired
        [ev] = [r for r in sink if r.name == "supervise.watchdog"]
        assert "no history growth" in ev.args["diagnosis"]
        assert ev.args["stalled_for"] >= 50


class TestHarnessInstrumentation:
    def grid_args(self):
        spec = combine([
            Description(even_of(chan(D)), chan(B)),
            Description(odd_of(chan(D)), chan(C)),
        ], name="dfm")
        agents = {"eb": lambda: source_agent(B, [0]),
                  "dfm": lambda: dfm_agent(B, C, D)}
        return agents, spec

    def test_cells_carry_elapsed_and_metrics(self):
        agents, spec = self.grid_args()
        tracer, sink = make_tracer()
        report = run_conformance(
            "dfm-grid", agents, [B, C, D], spec,
            {"none": lambda: None}, seeds=[0, 1], max_steps=200,
            tracer=tracer)
        assert len(report.cases) == 2
        for case in report.cases:
            assert case.elapsed_s >= 0.0
            assert case.metrics  # traced run ships its metrics
        assert report.total_elapsed_s() >= sum(
            c.elapsed_s for c in report.cases) * 0.99
        cells = [r for r in sink if r.name == "harness.cell"]
        assert len(cells) == 2
        assert {c.args["outcome"] for c in cells} == \
            {c.outcome for c in report.cases}
        assert "harness.grid" in names(sink)

    def test_untraced_cells_have_monotonic_elapsed_too(self):
        agents, spec = self.grid_args()
        report = run_conformance(
            "dfm-grid", agents, [B, C, D], spec,
            {"none": lambda: None}, seeds=[0], max_steps=200)
        [case] = report.cases
        assert case.elapsed_s >= 0.0
        assert case.metrics == {}


class TestOverheadGuard:
    def test_disabled_tracer_emits_nothing(self):
        sink = RingBufferSink()
        # a NullTracer with sinks attached must still record nothing
        from repro.obs import NullTracer

        tracer = NullTracer()
        tracer.sinks.append(sink)
        run_network({"eb": source_agent(B, [0])}, [B],
                    RandomOracle(0), max_steps=10, tracer=tracer)
        assert len(sink) == 0
