"""Flight recorder: record a run's nondeterminism, replay it exactly.

The round-trip law under test everywhere here: for any recorded run,
replaying its schedule strictly reproduces the run bit-for-bit —
``replayed.digest() == original.digest()`` — and any tampering with
the schedule is reported as a precise divergence, not silently
absorbed.
"""

import pytest

from repro.channels.channel import Channel
from repro.core import Description, DescriptionSystem
from repro.core.description import combine
from repro.core.solver import SmoothSolutionSolver
from repro.faults import (
    DropFault,
    DuplicateFault,
    FaultPipeline,
    FaultPlan,
    no_faults,
    replay_conformance_case,
    run_conformance,
    run_supervised,
)
from repro.functions import chan
from repro.functions.base import const_seq
from repro.functions.seq_fns import even_of, odd_of
from repro.kahn.agents import dfm_agent, source_agent
from repro.kahn.effects import Poll, Recv, Send
from repro.kahn.scheduler import (
    RandomOracle,
    RoundRobinOracle,
    ScriptedOracle,
    run_network,
)
from repro.obs import (
    RecordingOracle,
    ReplayDivergence,
    ReplayOracle,
    Schedule,
    ScheduleExhausted,
    iter_fault_rngs,
    replay_network,
    replay_supervised,
)
from repro.seq import FiniteSeq
from repro.traces.trace import Trace

B = Channel("b", alphabet={0, 2})
C = Channel("c", alphabet={1, 3})
D = Channel("d", alphabet={0, 1, 2, 3})


def dfm_agents():
    return {"eb": source_agent(B, [0, 2, 0, 2]),
            "dfm": dfm_agent(B, C, D)}


def dfm_desc():
    return combine([
        Description(even_of(chan(D)), chan(B)),
        Description(odd_of(chan(D)), chan(C)),
    ], name="dfm")


def drop_plan(seed=5):
    return FaultPlan(
        {B: DropFault(seed=seed, p=0.4, max_consecutive_drops=2)},
        name="drop")


# -- the miniature stop-and-wait protocol (as in tests/faults) ---------------

PAYLOAD = ["a", "b"]
OUT = Channel("out", alphabet=frozenset(PAYLOAD))
DATA = Channel("data",
               alphabet=frozenset((b, m) for b in (0, 1)
                                  for m in PAYLOAD))
ACK = Channel("ack", alphabet=frozenset({0, 1}))
PROTO_CHANNELS = [OUT, DATA, ACK]


def _sender(messages, retransmit_limit=60):
    bit = 0
    for m in messages:
        yield Send(DATA, (bit, m))
        attempts = 0
        while True:
            if (yield Poll(ACK)):
                if (yield Recv(ACK)) == bit:
                    break
                continue
            attempts += 1
            if retransmit_limit is not None \
                    and attempts > retransmit_limit:
                return
            yield Send(DATA, (bit, m))
        bit ^= 1


def _receiver():
    expected = 0
    while True:
        bit, message = yield Recv(DATA)
        yield Send(ACK, bit)
        if bit == expected:
            yield Send(OUT, message)
            expected ^= 1


def proto_agents(retransmit_limit=60):
    return {"sender": lambda: _sender(PAYLOAD, retransmit_limit),
            "receiver": _receiver}


def proto_spec() -> DescriptionSystem:
    return DescriptionSystem(
        [Description(chan(OUT), const_seq(FiniteSeq(PAYLOAD)),
                     name="out ⟵ payload")],
        channels=[OUT], name="service",
    )


def fair_loss(seed):
    return FaultPlan({
        DATA: DropFault(seed=seed, p=0.4, max_consecutive_drops=2),
        ACK: DropFault(seed=seed + 1, p=0.4,
                       max_consecutive_drops=2),
    }, name="fair-loss")


class TestScheduleContainer:
    def test_json_round_trip(self):
        s = Schedule(agent_picks=[["a", ["a", "b"]]],
                     choice_picks=[[1, 2, "a"]],
                     rng_draws=[["ch:DropFault", "random", 0.5]],
                     meta={"seed": 3})
        back = Schedule.from_json(s.to_json())
        assert back.to_dict() == s.to_dict()
        assert back.digest() == s.digest()

    def test_digest_ignores_meta(self):
        s = Schedule(agent_picks=[["a", ["a"]]])
        t = s.copy()
        t.meta["anything"] = "else"
        assert s.digest() == t.digest()
        t.agent_picks.append(["b", ["b"]])
        assert s.digest() != t.digest()

    def test_version_guard(self):
        bad = Schedule().to_dict()
        bad["version"] = 999
        with pytest.raises(ValueError):
            Schedule.from_dict(bad)

    def test_missing_version_rejected(self):
        # a dict without the stamp is a truncated or hand-edited file;
        # the loader must refuse (naming the keys present) rather than
        # silently assume the current version
        bad = Schedule(agent_picks=[["a", ["a"]]]).to_dict()
        del bad["version"]
        with pytest.raises(ValueError) as info:
            Schedule.from_dict(bad)
        msg = str(info.value)
        assert "version" in msg
        assert "agent_picks" in msg  # names what IS there

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError, match="not an object"):
            Schedule.from_dict(["not", "a", "schedule"])

    def test_save_load(self, tmp_path):
        s = Schedule(agent_picks=[["a", ["a"]]], meta={"k": 1})
        p = tmp_path / "s.json"
        s.save(str(p))
        assert Schedule.load(str(p)).digest() == s.digest()

    def test_len_and_counts(self):
        s = Schedule(agent_picks=[["a", ["a"]]] * 2,
                     rng_draws=[["x", "random", 0.1]])
        assert len(s) == 3
        assert s.counts()["agent_picks"] == 2


class TestRecordReplayNetwork:
    def test_round_trip_no_faults(self):
        r = run_network(dfm_agents(), [B, C, D], RandomOracle(7),
                        record=True)
        assert r.schedule is not None
        assert r.schedule.meta["digest"] == r.digest()
        rep = replay_network(r.schedule, dfm_agents(), [B, C, D])
        assert rep.matches
        assert rep.digest == r.digest()

    def test_round_trip_with_faults(self):
        r = run_network(dfm_agents(), [B, C, D], RandomOracle(7),
                        fault_plan=drop_plan(), record=True)
        assert r.schedule.rng_draws  # the DropFault drew
        rep = replay_network(r.schedule, dfm_agents(), [B, C, D],
                             fault_plan=drop_plan())
        assert rep.matches

    def test_round_trip_survives_serialization(self):
        r = run_network(dfm_agents(), [B, C, D], RandomOracle(3),
                        fault_plan=drop_plan(), record=True)
        reloaded = Schedule.from_json(r.schedule.to_json())
        rep = replay_network(reloaded, dfm_agents(), [B, C, D],
                             fault_plan=drop_plan())
        assert rep.matches

    def test_record_normalizes_indices(self):
        # RoundRobin returns raw counters; the schedule must store
        # what the runtime actually did (post-modulo)
        r = run_network(dfm_agents(), [B, C, D], RoundRobinOracle(),
                        record=True)
        for chosen, ready in r.schedule.agent_picks:
            assert chosen in ready

    def test_tampered_agent_pick_diverges(self):
        r = run_network(dfm_agents(), [B, C, D], RandomOracle(7),
                        record=True)
        bad = r.schedule.copy()
        bad.agent_picks[0] = ["nonexistent", ["nonexistent"]]
        with pytest.raises(ReplayDivergence) as exc:
            replay_network(bad, dfm_agents(), [B, C, D])
        assert exc.value.kind == "agent"
        assert exc.value.index == 0

    def test_truncated_schedule_exhausts_strictly(self):
        r = run_network(dfm_agents(), [B, C, D], RandomOracle(7),
                        record=True)
        cut = r.schedule.copy(
            agent_picks=r.schedule.agent_picks[:2])
        with pytest.raises(ScheduleExhausted) as exc:
            replay_network(cut, dfm_agents(), [B, C, D])
        assert exc.value.kind == "agent"
        assert exc.value.index == 2

    def test_lenient_replay_records_divergence_and_finishes(self):
        from repro.kahn.scheduler import FirstOracle

        r = run_network(dfm_agents(), [B, C, D], RandomOracle(7),
                        record=True)
        cut = r.schedule.copy(
            agent_picks=r.schedule.agent_picks[:2])
        rep = replay_network(cut, dfm_agents(), [B, C, D],
                             fallback=FirstOracle())
        assert rep.divergence is not None
        assert rep.divergence.kind == "agent"
        assert rep.result.quiescent  # the fallback finished the run

    def test_tampered_rng_draw_diverges(self):
        r = run_network(dfm_agents(), [B, C, D], RandomOracle(7),
                        fault_plan=drop_plan(), record=True)
        assert r.schedule.rng_draws
        bad = r.schedule.copy()
        bad.rng_draws[0] = ["wrong:Fault", "random", 0.0]
        with pytest.raises(ReplayDivergence) as exc:
            replay_network(bad, dfm_agents(), [B, C, D],
                           fault_plan=drop_plan())
        assert exc.value.kind == "rng"


class TestScriptedOracleStrict:
    def test_default_falls_back_to_zero(self):
        oracle = ScriptedOracle(agent_picks=[1])

        class A:
            def __init__(self, name):
                self.name = name

        ready = [A("x"), A("y")]
        assert oracle.pick_agent(ready) == 1
        assert oracle.pick_agent(ready) == 0  # exhausted, non-strict

    def test_strict_agent_exhaustion(self):
        oracle = ScriptedOracle(agent_picks=[0], strict=True)
        oracle.pick_agent([object()])
        with pytest.raises(ScheduleExhausted) as exc:
            oracle.pick_agent([object()])
        assert exc.value.kind == "agent"
        assert exc.value.index == 1

    def test_strict_choice_exhaustion(self):
        oracle = ScriptedOracle(choice_picks=[], strict=True)
        with pytest.raises(ScheduleExhausted) as exc:
            oracle.pick_choice(object(), 2)
        assert exc.value.kind == "choice"
        assert exc.value.index == 0


class TestFaultRngRecording:
    def test_pipeline_stages_get_distinct_labels(self):
        plan = FaultPlan({
            DATA: [DropFault(seed=1, p=0.3),
                   DuplicateFault(seed=2, p=0.3)],
        }, name="pipe")
        labels = [label for label, _ in iter_fault_rngs(plan)]
        assert labels == ["data/0:DropFault", "data/1:DuplicateFault"]

    def test_labels_sorted_by_channel(self):
        plan = fair_loss(3)
        labels = [label for label, _ in iter_fault_rngs(plan)]
        assert labels == sorted(labels)

    def test_pipeline_plan_round_trips(self):
        def plan():
            return FaultPlan({
                DATA: [DropFault(seed=1, p=0.3,
                                 max_consecutive_drops=2),
                       DuplicateFault(seed=2, p=0.3)],
            }, name="pipe")

        r = run_supervised(proto_agents(), PROTO_CHANNELS,
                           RandomOracle(4), max_steps=4000,
                           fault_plan=plan(), record=True)
        rep = replay_supervised(r.schedule, proto_agents(),
                                PROTO_CHANNELS, fault_plan=plan())
        assert rep.matches


class TestSupervisedRecordReplay:
    def test_round_trip(self):
        r = run_supervised(proto_agents(), PROTO_CHANNELS,
                           RandomOracle(2), max_steps=4000,
                           fault_plan=fair_loss(11), record=True)
        assert r.schedule.meta["digest"] == r.digest()
        rep = replay_supervised(r.schedule, proto_agents(),
                                PROTO_CHANNELS,
                                fault_plan=fair_loss(11))
        assert rep.matches
        assert rep.result.watchdog_fired == r.watchdog_fired

    def test_digest_covers_supervision_fields(self):
        r1 = run_supervised(proto_agents(), PROTO_CHANNELS,
                            RandomOracle(2), max_steps=4000)
        base_payload = r1._digest_payload()
        assert "watchdog_fired" in base_payload
        assert "restarts" in base_payload


class TestHarnessRecording:
    def test_every_case_ships_a_schedule(self):
        report = run_conformance(
            "proto", proto_agents(), PROTO_CHANNELS, proto_spec(),
            {"no-faults": no_faults,
             "fair-loss": lambda: fair_loss(7)},
            seeds=range(3), observe={OUT}, max_steps=4000,
        )
        assert all(c.schedule is not None for c in report.cases)
        for case in report.cases:
            assert case.schedule.meta["outcome"] == case.outcome
            assert case.schedule.meta["digest"] == \
                case.result.digest()

    def test_record_off(self):
        report = run_conformance(
            "proto", proto_agents(), PROTO_CHANNELS, proto_spec(),
            {"no-faults": no_faults}, seeds=[0], observe={OUT},
            record=False,
        )
        assert all(c.schedule is None for c in report.cases)

    def test_failed_property(self):
        report = run_conformance(
            "proto", proto_agents(), PROTO_CHANNELS, proto_spec(),
            {"no-faults": no_faults}, seeds=[0], observe={OUT},
        )
        assert not report.cases[0].failed

    def test_replay_conformance_case_round_trip(self):
        plans = {"fair-loss": lambda: fair_loss(7)}
        report = run_conformance(
            "proto", proto_agents(), PROTO_CHANNELS, proto_spec(),
            plans, seeds=[1], observe={OUT}, max_steps=4000,
        )
        case = report.cases[0]
        replayed = replay_conformance_case(
            case.schedule, proto_agents(), PROTO_CHANNELS,
            proto_spec(), plans, observe={OUT},
        )
        assert replayed.outcome == case.outcome
        assert replayed.result.digest() == \
            case.schedule.meta["digest"]

    def test_replay_rejects_unknown_plan(self):
        report = run_conformance(
            "proto", proto_agents(), PROTO_CHANNELS, proto_spec(),
            {"fair-loss": lambda: fair_loss(7)}, seeds=[1],
            observe={OUT},
        )
        with pytest.raises(KeyError):
            replay_conformance_case(
                report.cases[0].schedule, proto_agents(),
                PROTO_CHANNELS, proto_spec(), {"other": no_faults},
                observe={OUT},
            )


class TestRecordingOracleMeta:
    def test_seed_captured(self):
        rec = RecordingOracle(RandomOracle(42))
        assert rec.schedule.meta["oracle"] == "RandomOracle"
        assert rec.schedule.meta["oracle_seed"] == 42

    def test_replay_oracle_checks_choice_context(self):
        sched = Schedule(choice_picks=[[0, 2, "agent-a"]])
        oracle = ReplayOracle(sched)

        class A:
            name = "agent-b"

        with pytest.raises(ReplayDivergence) as exc:
            oracle.pick_choice(A(), 2)
        assert exc.value.kind == "choice"


class TestSolverWitness:
    def _solver(self):
        return SmoothSolutionSolver.over_channels(
            dfm_desc(), [B, C, D])

    def test_witness_round_trip(self):
        solver = self._solver()
        result = solver.explore(max_depth=4)
        t = max(result.finite_solutions, key=lambda t: t.length())
        w = solver.witness_schedule(t)
        assert w.meta["kind"] == "solver-path"
        assert w.meta["limit_holds"]
        assert len(w.path) == t.length()
        replayed = solver.replay_witness(w)
        assert list(replayed) == list(t)

    def test_witness_survives_json(self):
        solver = self._solver()
        t = max(solver.explore(max_depth=4).finite_solutions,
                key=lambda t: t.length())
        w = Schedule.from_json(solver.witness_schedule(t).to_json())
        assert list(solver.replay_witness(w)) == list(t)

    def test_tampered_witness_diverges(self):
        solver = self._solver()
        t = max(solver.explore(max_depth=4).finite_solutions,
                key=lambda t: t.length())
        w = solver.witness_schedule(t)
        w.path[1] = ["d", "99"]
        with pytest.raises(ReplayDivergence) as exc:
            solver.replay_witness(w)
        assert exc.value.kind == "path"
        assert exc.value.index == 1

    def test_empty_witness_is_bottom(self):
        solver = self._solver()
        w = solver.witness_schedule(Trace.empty())
        assert solver.replay_witness(w).length() == 0

    def test_solver_result_digest_stable(self):
        a = self._solver().explore(max_depth=4)
        b = self._solver().explore(max_depth=4)
        assert a.digest() == b.digest()
        c = self._solver().explore(max_depth=3)
        assert a.digest() != c.digest()
