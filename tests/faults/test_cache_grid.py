"""Cached conformance grids: warm reruns are bit-for-bit equal.

Grid cells are independent computations fully determined by their
inputs (the same property that makes the grid process-parallel), so a
cell served from the persistent store must reproduce the cold run's
outcome and schedule digest exactly — asserted here through
:meth:`~repro.faults.harness.ConformanceReport.digest` on both the
serial and the pool executor.
"""

import json

import pytest

from repro import par
from repro.cache.store import CacheStore
from repro.channels.channel import Channel
from repro.core.description import Description, combine
from repro.faults.harness import run_conformance
from repro.functions.base import chan
from repro.functions.seq_fns import even_of, odd_of
from repro.kahn.agents import dfm_agent, source_agent

B = Channel("b", alphabet={0, 2})
C = Channel("c", alphabet={1, 3})
D = Channel("d", alphabet={0, 1, 2, 3})


def dfm_grid_inputs():
    spec = combine([
        Description(even_of(chan(D)), chan(B)),
        Description(odd_of(chan(D)), chan(C)),
    ], name="dfm")
    agents = {"eb": lambda: source_agent(B, [0, 2, 0, 2]),
              "dfm": lambda: dfm_agent(B, C, D)}
    plans = {"none": lambda: None}
    return agents, [B, C, D], spec, plans


class TestSerialGridCache:
    def test_warm_run_is_bit_for_bit_equal(self, tmp_path):
        agents, channels, spec, plans = dfm_grid_inputs()
        store = CacheStore(tmp_path)
        cold = run_conformance("dfm", agents, channels, spec, plans,
                               seeds=[0, 1], cache=store)
        assert store.counters()["write"] == 2
        assert not any(c.cached for c in cold.cases)

        warm = run_conformance("dfm", agents, channels, spec, plans,
                               seeds=[0, 1],
                               cache=CacheStore(tmp_path))
        assert all(c.cached for c in warm.cases)
        assert warm.digest() == cold.digest()
        for a, b in zip(cold.cases, warm.cases):
            assert a.outcome == b.outcome
            assert a.schedule.digest() == b.schedule.digest()
            assert b.run_digest() == a.result.digest()
            assert b.result is None  # cache-served: nothing ran

    def test_uncached_run_unaffected(self):
        agents, channels, spec, plans = dfm_grid_inputs()
        report = run_conformance("dfm", agents, channels, spec,
                                 plans, seeds=[0])
        assert not any(c.cached for c in report.cases)

    def test_new_seed_misses_old_seed_hits(self, tmp_path):
        agents, channels, spec, plans = dfm_grid_inputs()
        run_conformance("dfm", agents, channels, spec, plans,
                        seeds=[0], cache=CacheStore(tmp_path))
        store = CacheStore(tmp_path)
        mixed = run_conformance("dfm", agents, channels, spec, plans,
                                seeds=[0, 7], cache=store)
        assert [c.cached for c in mixed.cases] == [True, False]
        assert store.counters() == {"hit": 1, "miss": 1,
                                    "write": 1, "evict": 0}

    def test_facet_change_misses(self, tmp_path):
        # a different step budget is a different cell key — the cached
        # answer must NOT be reused for a differently-budgeted grid
        agents, channels, spec, plans = dfm_grid_inputs()
        run_conformance("dfm", agents, channels, spec, plans,
                        seeds=[0], cache=CacheStore(tmp_path))
        store = CacheStore(tmp_path)
        report = run_conformance("dfm", agents, channels, spec, plans,
                                 seeds=[0], max_steps=123,
                                 cache=store)
        assert not report.cases[0].cached
        assert store.counters()["miss"] == 1

    def test_corrupt_entry_reruns_the_cell(self, tmp_path):
        agents, channels, spec, plans = dfm_grid_inputs()
        store = CacheStore(tmp_path)
        cold = run_conformance("dfm", agents, channels, spec, plans,
                               seeds=[0], cache=store)
        [entry] = (tmp_path / "cell").glob("*.json")
        entry.write_text("garbage", encoding="utf-8")
        warm = run_conformance("dfm", agents, channels, spec, plans,
                               seeds=[0],
                               cache=CacheStore(tmp_path))
        assert not warm.cases[0].cached
        assert warm.digest() == cold.digest()

    def test_tampered_payload_coordinate_is_a_miss(self, tmp_path):
        # an entry whose recorded (plan, seed) disagrees with the
        # requested cell is rejected even if it parses cleanly
        agents, channels, spec, plans = dfm_grid_inputs()
        store = CacheStore(tmp_path)
        run_conformance("dfm", agents, channels, spec, plans,
                        seeds=[0], cache=store)
        [path] = (tmp_path / "cell").glob("*.json")
        entry = json.loads(path.read_text())
        entry["value"]["seed"] = 999
        path.write_text(json.dumps(entry), encoding="utf-8")
        warm = run_conformance("dfm", agents, channels, spec, plans,
                               seeds=[0],
                               cache=CacheStore(tmp_path))
        assert not warm.cases[0].cached

    def test_record_false_round_trip(self, tmp_path):
        agents, channels, spec, plans = dfm_grid_inputs()
        cold = run_conformance("dfm", agents, channels, spec, plans,
                               seeds=[0], record=False,
                               cache=CacheStore(tmp_path))
        warm = run_conformance("dfm", agents, channels, spec, plans,
                               seeds=[0], record=False,
                               cache=CacheStore(tmp_path))
        assert warm.cases[0].cached
        assert warm.cases[0].schedule is None
        assert warm.digest() == cold.digest()


class TestParallelGridCache:
    def needs_fork(self):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("requires the fork start method")

    def test_pool_warm_run_is_bit_for_bit_equal(self, tmp_path):
        self.needs_fork()
        store = CacheStore(tmp_path)
        cold = par.run_conformance_parallel(
            "dfm", seeds=[0, 1], workers=2, cache=store)
        assert store.counters()["write"] == len(cold.cases)

        warm_store = CacheStore(tmp_path)
        warm = par.run_conformance_parallel(
            "dfm", seeds=[0, 1], workers=2, cache=warm_store)
        assert all(c.cached for c in warm.cases)
        assert warm_store.counters()["hit"] == len(warm.cases)
        assert warm.digest() == cold.digest()

    def test_pool_partial_warm_preserves_grid_order(self, tmp_path):
        self.needs_fork()
        cold = par.run_conformance_parallel(
            "dfm", seeds=[0, 1, 2], workers=2,
            cache=CacheStore(tmp_path))
        # drop one plan's entries: grid order must survive the mix of
        # cached and freshly-computed cells
        store = CacheStore(tmp_path)
        partial = par.run_conformance_parallel(
            "dfm", seeds=[0, 1, 2, 3], workers=2, cache=store)
        assert [(c.plan, c.seed) for c in partial.cases] == \
            [(c.plan, c.seed) for c in par.run_conformance_parallel(
                "dfm", seeds=[0, 1, 2, 3], workers=1).cases]
        cached_coords = {(c.plan, c.seed)
                         for c in partial.cases if c.cached}
        assert cached_coords == {(c.plan, c.seed)
                                 for c in cold.cases}

    def test_serial_and_pool_share_cache_keys(self, tmp_path):
        self.needs_fork()
        # cells written by the serial executor are hits for the pool
        # executor and vice versa — the key must not depend on the
        # execution strategy
        par.run_conformance_parallel(
            "dfm", seeds=[0], workers=1, cache=CacheStore(tmp_path))
        store = CacheStore(tmp_path)
        warm = par.run_conformance_parallel(
            "dfm", seeds=[0, 1], workers=2, cache=store)
        by_seed = {c.seed: c.cached for c in warm.cases
                   if c.plan == "none"}
        assert by_seed == {0: True, 1: False}


class TestEmptyGrid:
    def test_no_seeds_is_vacuously_conforming(self):
        report = par.run_conformance_parallel("dfm", seeds=[],
                                              workers=4)
        assert report.cases == []
        assert report.all_conform
        assert report.outcomes() == {}

    def test_empty_grid_renders_zero_cells(self):
        from repro.report import render_conformance_report

        report = par.run_conformance_parallel("dfm", seeds=[])
        text = render_conformance_report(report)
        assert "0 cells" in text

    def test_serial_empty_grid(self):
        agents, channels, spec, plans = dfm_grid_inputs()
        report = run_conformance("dfm", agents, channels, spec,
                                 plans, seeds=[])
        assert report.all_conform and report.cases == []
