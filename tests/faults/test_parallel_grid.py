"""Tests for repro.par — the process-parallel conformance grid.

The parallel executor only works if everything a worker sends back
survives the pickle boundary with content intact: these tests pin the
round-trips (channels, events, schedules, full cases), the registry
gating that decides when parallelism is even attempted, and the serial
fallback paths.
"""

import os
import pickle

import pytest

from repro import par
from repro.channels.channel import Channel
from repro.channels.event import Event
from repro.faults.harness import ConformanceReport, run_conformance
from repro.par import (
    CellTask,
    Scenario,
    get_scenario,
    has_scenario,
    parallelizable,
    register_scenario,
    run_cell,
    run_conformance_parallel,
    scenario_names,
)
from repro.seq.finite import fseq
from repro.traces.trace import Trace

FORK_AVAILABLE = "fork" in __import__(
    "multiprocessing").get_all_start_methods()


class TestPickleRoundTrips:
    """Satellite: everything a worker returns must pickle faithfully.

    Channel/Event/FiniteSeq are slot-based immutable classes whose
    ``__setattr__`` guard breaks default unpickling — each carries an
    explicit ``__reduce__`` now; these tests are the regression net.
    """

    def test_channel(self):
        c = Channel("b", alphabet={0, 2})
        c2 = pickle.loads(pickle.dumps(c))
        assert c2 == c
        assert c2.name == "b"
        assert c2.alphabet == frozenset({0, 2})
        assert c2.auxiliary is c.auxiliary

    def test_auxiliary_channel(self):
        c = Channel("t", auxiliary=True)
        c2 = pickle.loads(pickle.dumps(c))
        assert c2.auxiliary
        assert c2.alphabet is None

    def test_event(self):
        e = Event(Channel("b", alphabet={0, 2}), 0)
        e2 = pickle.loads(pickle.dumps(e))
        assert e2 == e
        assert e2.channel.name == "b"
        assert e2.message == 0

    def test_finite_seq(self):
        s = fseq(1, 2, 3)
        s2 = pickle.loads(pickle.dumps(s))
        assert s2 == s
        assert list(s2.items) == [1, 2, 3]

    def test_finite_trace(self):
        b = Channel("b", alphabet={0, 2})
        d = Channel("d", alphabet={0, 1, 2, 3})
        t = Trace.from_pairs([(b, 0), (d, 0), (b, 2)])
        t2 = pickle.loads(pickle.dumps(t))
        assert list(t2) == list(t)

    def test_cell_task(self):
        task = CellTask(scenario="dfm", plan="drop", seed=3,
                        max_steps=500)
        t2 = pickle.loads(pickle.dumps(task))
        assert t2 == task

    def test_conformance_case_content_preserved(self):
        task = CellTask(scenario="dfm", plan="drop", seed=0,
                        max_steps=2000)
        case = run_cell(task)
        c2 = pickle.loads(pickle.dumps(case))
        assert c2.outcome == case.outcome
        assert c2.plan == case.plan and c2.seed == case.seed
        assert c2.result.digest() == case.result.digest()
        assert c2.schedule is not None
        assert c2.schedule.digest() == case.schedule.digest()
        assert c2.metrics == case.metrics
        assert list(c2.result.trace) == list(case.result.trace)


class TestRegistry:
    def test_builtin_scenarios_registered(self):
        assert "dfm" in scenario_names()
        assert "alternating_bit" in scenario_names()

    def test_get_scenario_builds_fresh(self):
        a, b = get_scenario("dfm"), get_scenario("dfm")
        assert a is not b  # factories are stateful; never shared
        assert a.name == b.name
        assert sorted(a.plans) == sorted(b.plans)

    def test_get_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            get_scenario("no-such-scenario")

    def test_register_decorator(self):
        name = "test-registry-scratch"
        try:
            @register_scenario(name)
            def _build():
                return get_scenario("dfm")

            assert has_scenario(name)
            assert get_scenario(name).name == "dfm"
        finally:
            par._SCENARIOS.pop(name, None)

    def test_parallelizable_gating(self):
        assert not parallelizable(None)
        assert not parallelizable("no-such-scenario")
        if FORK_AVAILABLE:
            assert parallelizable("dfm")
            sc = get_scenario("dfm")
            assert parallelizable("dfm", sc.plans)
            # plan names outside the registered scenario's plans mean
            # the workers could not rebuild them -> not parallelizable
            assert not parallelizable(
                "dfm", {"unknown-plan": lambda: None})


class TestSerialFallback:
    def test_workers_one_runs_serial(self):
        report = run_conformance_parallel(
            "dfm", seeds=[0], workers=1)
        assert isinstance(report, ConformanceReport)
        assert report.all_conform
        assert report.wall_clock_s > 0

    def test_single_cell_grid_runs_serial(self):
        sc = get_scenario("dfm")
        report = run_conformance_parallel(
            "dfm", seeds=[0], plans={"none": sc.plans["none"]},
            workers=8)
        assert len(report.cases) == 1
        assert report.all_conform

    def test_harness_falls_back_when_not_registered(self):
        sc = get_scenario("dfm")
        report = run_conformance(
            sc.name, sc.agents, sc.channels, sc.spec, sc.plans,
            seeds=[0], observe=sc.observe, max_steps=sc.max_steps,
            watchdog_limit=sc.watchdog_limit, depth=sc.depth,
            workers=4, scenario="not-a-registered-scenario")
        assert report.all_conform
        assert len(report.cases) == len(sc.plans)


@pytest.mark.skipif(not FORK_AVAILABLE,
                    reason="parallel executor requires fork")
class TestParallelExecution:
    def test_results_stream_back_in_grid_order(self):
        report = run_conformance_parallel(
            "dfm", seeds=range(2), workers=2)
        sc = get_scenario("dfm")
        expected = [(plan, seed) for plan in sc.plans
                    for seed in range(2)]
        assert [(c.plan, c.seed) for c in report.cases] == expected

    def test_cells_keep_schedules_and_digests(self):
        report = run_conformance_parallel(
            "dfm", seeds=range(2), workers=2)
        for case in report.cases:
            assert case.schedule is not None
            assert case.schedule.meta["digest"] == \
                case.result.digest()
            assert case.schedule.meta["outcome"] == case.outcome
            assert case.elapsed_s > 0

    def test_record_false_skips_schedules(self):
        report = run_conformance_parallel(
            "dfm", seeds=[0], workers=2, record=False)
        assert all(c.schedule is None for c in report.cases)

    def test_wall_clock_measured_around_grid(self):
        report = run_conformance_parallel(
            "dfm", seeds=range(2), workers=2)
        assert report.wall_clock_s > 0
        # per-cell compute sums over cells; with real pool overhead
        # wall clock can exceed it on a starved machine, but both
        # clocks must be present and sane
        assert report.total_elapsed_s() > 0

    def test_traced_grid_merges_worker_records(self):
        from repro.obs.sinks import RingBufferSink
        from repro.obs.tracer import Tracer

        ring = RingBufferSink()
        tracer = Tracer([ring])
        report = run_conformance_parallel(
            "dfm", seeds=[0], workers=2, tracer=tracer)
        assert report.all_conform
        tracks = {r.track for r in ring}
        # every cell's rows are suffixed with its grid coordinates
        sc = get_scenario("dfm")
        for plan in sc.plans:
            assert any(t.endswith(f"@{plan}×0") for t in tracks), plan
        # a traced grid also ships per-cell metrics summaries
        assert all(c.metrics for c in report.cases)
        # rebased timestamps stay non-negative on the parent timeline
        for r in ring:
            ts = r.start_ns if r.kind == "span" else r.ts_ns
            assert ts >= 0


class TestWallClockReporting:
    def test_total_elapsed_is_per_cell_compute_sum(self):
        report = run_conformance_parallel("dfm", seeds=[0], workers=1)
        assert report.total_elapsed_s() == pytest.approx(
            sum(c.elapsed_s for c in report.cases))

    def test_render_shows_both_clocks(self):
        from repro.report import render_conformance_report

        report = run_conformance_parallel("dfm", seeds=[0], workers=1)
        text = render_conformance_report(report)
        assert "wall-clock" in text
        assert "per-cell compute" in text
