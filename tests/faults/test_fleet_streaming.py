"""Tests for live telemetry streaming through the fleet.

Traced fleet cells no longer ride their whole trace buffer on the
final ``ok`` message: workers ship bounded, sequence-numbered batches
while cells run, and the coordinator's :class:`TelemetryMerger`
commits an attempt's records exactly once — only if the fleet accepts
that attempt.  These tests pin the acceptance property under chaos:
valid Chrome-trace JSON whose surviving tracks match a clean run's,
with retried cells never double-counted and quarantined cells leaving
no tracks at all.
"""

import json
from collections import Counter

import pytest

from repro import par
from repro.obs import RingBufferSink, Tracer, write_chrome_trace
from repro.obs.telemetry import FleetStatus
from repro.par import CellTask, ChaosSpec, FleetPolicy

FORK_AVAILABLE = "fork" in __import__(
    "multiprocessing").get_all_start_methods()

pytestmark = pytest.mark.skipif(
    not FORK_AVAILABLE, reason="fleet executor requires fork")

#: Fast retries so chaos tests don't sleep through real backoff.
FAST = dict(backoff_unit_s=0.002)


def _traced_grid(seeds=range(2), fleet=None, status=None):
    ring = RingBufferSink()
    tracer = Tracer([ring])
    report = par.run_conformance_parallel(
        "dfm", seeds=seeds, workers=2, tracer=tracer,
        fleet=fleet, status=status)
    return report, ring


def _per_cell_counts(ring):
    """Record count per ``@plan×seed`` cell suffix."""
    counts = Counter()
    for rec in ring:
        if "@" in rec.track:
            counts[rec.track.rsplit("@", 1)[1]] += 1
    return counts


class TestStreamingGrid:
    def test_cells_stream_batches_while_running(self):
        report, ring = _traced_grid()
        assert report.all_conform
        stats = report.fleet_stats
        assert stats["stream_batches"] > 0
        assert stats["stream_records"] > 0
        telemetry = stats["telemetry"]
        assert telemetry["attempts_committed"] == len(report.cases)
        assert telemetry["duplicates_dropped"] == 0
        assert telemetry["attempts_abandoned"] == 0
        # everything ingested was streamed, nothing rode the final ok
        assert telemetry["records"] == stats["stream_records"]
        assert len(list(ring)) >= stats["stream_records"]

    def test_streamed_tracks_keep_grid_coordinates(self):
        report, ring = _traced_grid(seeds=[0])
        sc = par.get_scenario("dfm")
        tracks = {r.track for r in ring}
        for plan in sc.plans:
            assert any(t.endswith(f"@{plan}×0") for t in tracks), plan
        for rec in ring:
            ts = rec.start_ns if rec.kind == "span" else rec.ts_ns
            assert ts >= 0

    def test_untraced_grid_ships_nothing(self):
        report = par.run_conformance_parallel(
            "dfm", seeds=range(2), workers=2,
            fleet=FleetPolicy(retries=1, **FAST))
        stats = report.fleet_stats
        assert stats.get("stream_batches", 0) == 0
        assert "telemetry" not in stats

    def test_fleet_status_tracks_the_stream(self):
        status = FleetStatus()
        report, _ = _traced_grid(status=status)
        stats = report.fleet_stats
        assert status.done == len(report.cases)
        assert status.conforming == len(report.cases)
        assert status.records_streamed == stats["stream_records"]
        assert status.batches_streamed == stats["stream_batches"]
        assert status.finished
        assert status.busy == 0


def _recovering_chaos(seeds=range(2)):
    """A chaos spec that kills at least one first attempt and lets
    every killed cell recover on its retries — deterministic fuel for
    the no-double-count property."""
    sc = par.get_scenario("dfm")
    tasks = [CellTask("dfm", plan, seed, sc.max_steps)
             for plan in sc.plans for seed in seeds]

    def recovers(spec):
        killed = [t for t in tasks if spec.kills(t, 1)]
        return killed and not any(spec.kills(t, a)
                                  for t in killed for a in (2, 3, 4))

    return next(spec for spec in
                (ChaosSpec(kill_worker_p=0.4, seed=s)
                 for s in range(100)) if recovers(spec))


class TestChaosStreaming:
    def test_retried_cells_never_double_count(self):
        clean_report, clean_ring = _traced_grid()
        chaos = _recovering_chaos()
        report, ring = _traced_grid(
            fleet=FleetPolicy(retries=3, chaos=chaos, **FAST))
        assert report.all_conform and not report.degraded
        assert report.digest() == clean_report.digest()
        retried = [c for c in report.cases if c.attempts > 1]
        assert retried, "chaos spec should have killed a cell"
        # exactly one attempt per cell committed — kills at task
        # receipt stream nothing (partial-stream retraction is pinned
        # by the TelemetryMerger unit tests)
        telemetry = report.fleet_stats["telemetry"]
        assert telemetry["attempts_committed"] == len(report.cases)
        # a retried cell's committed records equal the clean run's —
        # the failed attempt contributed nothing
        assert _per_cell_counts(ring) == _per_cell_counts(clean_ring)

    def test_chaos_trace_exports_valid_chrome_json(self, tmp_path):
        chaos = _recovering_chaos()
        report, ring = _traced_grid(
            fleet=FleetPolicy(retries=3, chaos=chaos, **FAST))
        path = tmp_path / "fleet.perfetto.json"
        n = write_chrome_trace(list(ring), str(path),
                               process_name="repro-grid:dfm")
        doc = json.loads(path.read_text(encoding="utf-8"))
        events = doc["traceEvents"]
        assert len(events) == n
        named = {e["args"]["name"] for e in events
                 if e.get("name") == "thread_name"}
        # one named Perfetto row per surviving cell
        for case in report.cases:
            if not case.infra_failure:
                suffix = f"@{case.plan}×{case.seed}"
                assert any(t.endswith(suffix) for t in named), suffix
        durations = [e["dur"] for e in events if e.get("ph") == "X"]
        assert all(d >= 0 for d in durations)

    def test_quarantined_cells_leave_no_tracks(self, tmp_path):
        # p=1.0: every attempt dies, every cell quarantines — all
        # streamed telemetry must be retracted, none committed
        policy = FleetPolicy(
            retries=1, quarantine_dir=str(tmp_path / "q"),
            chaos=ChaosSpec(kill_worker_p=1.0, seed=3), **FAST)
        report, ring = _traced_grid(seeds=[0], fleet=policy)
        assert report.degraded
        assert all(c.outcome == "quarantined" for c in report.cases)
        assert not any("@" in r.track for r in ring)
        telemetry = report.fleet_stats["telemetry"]
        assert telemetry["attempts_committed"] == 0
        # the export is still valid (possibly near-empty) JSON
        path = tmp_path / "empty.perfetto.json"
        write_chrome_trace(list(ring), str(path))
        json.loads(path.read_text(encoding="utf-8"))
