"""Conformance harness: fault grids × seeds against a specification.

Uses a miniature stop-and-wait protocol (a two-message alternating-bit
core) so the test is self-contained; the full ABP scenario lives in
``examples/alternating_bit.py`` and ``benchmarks/bench_fault_injection``.
"""

from repro.channels.channel import Channel
from repro.core import Description, DescriptionSystem
from repro.faults import (
    CorruptFault,
    DropFault,
    FaultPlan,
    no_faults,
    run_conformance,
)
from repro.functions import chan
from repro.functions.base import const_seq
from repro.kahn.effects import Poll, Recv, Send
from repro.seq import FiniteSeq

PAYLOAD = ["a", "b"]
OUT = Channel("out", alphabet=frozenset(PAYLOAD))
DATA = Channel("data",
               alphabet=frozenset((b, m) for b in (0, 1)
                                  for m in PAYLOAD))
ACK = Channel("ack", alphabet=frozenset({0, 1}))
CHANNELS = [OUT, DATA, ACK]


def sender(messages, retransmit_limit=60):
    bit = 0
    for m in messages:
        yield Send(DATA, (bit, m))
        attempts = 0
        while True:
            if (yield Poll(ACK)):
                if (yield Recv(ACK)) == bit:
                    break
                continue
            attempts += 1
            if retransmit_limit is not None and attempts > retransmit_limit:
                return
            yield Send(DATA, (bit, m))
        bit ^= 1


def receiver():
    expected = 0
    while True:
        bit, message = yield Recv(DATA)
        yield Send(ACK, bit)
        if bit == expected:
            yield Send(OUT, message)
            expected ^= 1


def agents(retransmit_limit=60):
    return {"sender": lambda: sender(PAYLOAD, retransmit_limit),
            "receiver": receiver}


def spec() -> DescriptionSystem:
    return DescriptionSystem(
        [Description(chan(OUT), const_seq(FiniteSeq(PAYLOAD)),
                     name="out ⟵ payload")],
        channels=[OUT], name="service",
    )


def fair_loss(seed):
    return FaultPlan({
        DATA: DropFault(seed=seed, p=0.4, max_consecutive_drops=2),
        ACK: DropFault(seed=seed + 1, p=0.4, max_consecutive_drops=2),
    }, name="fair-loss")


class TestConformanceGrid:
    def test_fair_grid_all_conforms(self):
        report = run_conformance(
            "mini-abp", agents(), CHANNELS, spec().combined(),
            {"none": no_faults, "fair-loss": lambda: fair_loss(9)},
            seeds=range(6), observe={OUT}, max_steps=3000,
            watchdog_limit=600,
        )
        assert report.all_conform, [str(c) for c in report.cases]
        assert report.outcomes() == {"conforms": 12}

    def test_payload_corruption_is_flagged_as_violation(self):
        def corrupting(seed):
            # corrupt the *delivered payload* channel: spec-visible
            return FaultPlan({OUT: CorruptFault(
                seed=seed, p=1.0, max_consecutive=None)},
                name="corrupt-out")

        report = run_conformance(
            "mini-abp", agents(), CHANNELS, spec().combined(),
            {"corrupt-out": lambda: corrupting(2)},
            seeds=range(4), observe={OUT}, max_steps=3000,
        )
        assert not report.all_conform
        assert len(report.violations) == 4
        assert all("rejected" in c.detail for c in report.violations)

    def test_unfair_loss_livelocks_and_is_reported(self):
        def black_hole():
            return FaultPlan({DATA: DropFault(
                seed=0, p=1.0, max_consecutive_drops=None)},
                name="black-hole")

        report = run_conformance(
            "mini-abp", agents(retransmit_limit=None), CHANNELS,
            spec().combined(), {"black-hole": black_hole},
            seeds=range(3), observe={OUT}, max_steps=50_000,
            watchdog_limit=200,
        )
        assert len(report.livelocks) == 3
        # watchdog cut each run far below the step budget
        assert all(c.result.steps < 1000 for c in report.livelocks)

    def test_summary_counts_outcomes(self):
        report = run_conformance(
            "mini-abp", agents(), CHANNELS, spec().combined(),
            {"none": no_faults}, seeds=range(2), observe={OUT},
        )
        assert "conforms: 2" in report.summary()
        assert "mini-abp" in report.summary()

    def test_select_filters_by_plan(self):
        report = run_conformance(
            "mini-abp", agents(), CHANNELS, spec().combined(),
            {"none": no_faults, "fair-loss": lambda: fair_loss(1)},
            seeds=range(2), observe={OUT}, max_steps=3000,
            watchdog_limit=600,
        )
        assert len(report.select("conforms", plan="none")) == 2
