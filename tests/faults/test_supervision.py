"""SupervisedRuntime: failure capture, restarts, backoff, watchdog."""

import pytest

from repro.channels.channel import Channel
from repro.faults import (
    DropFault,
    FaultPlan,
    RestartPolicy,
    SupervisedRuntime,
    run_supervised,
    stall_at_step,
)
from repro.kahn.effects import Choose, Recv, Send
from repro.kahn.scheduler import FirstOracle, RandomOracle

B = Channel("b", alphabet={0, 1, 2})
C = Channel("c", alphabet={0, 1, 2})


def copier():
    while True:
        m = yield Recv(B)
        yield Send(C, m)


class TestFailureIsolation:
    def test_one_crash_leaves_other_agents_intact(self):
        def bomb():
            yield Send(B, 0)
            raise ValueError("kaput")

        def steady():
            for m in [1, 2]:
                yield Send(B, m)

        result = run_supervised(
            {"bomb": bomb, "steady": steady, "copy": copier},
            [B, C], RandomOracle(1), policy=None,
        )
        assert result.failed_agents == ["bomb"]
        # the crash is captured with its traceback, and the rest of the
        # network ran to quiescence with full progress
        assert "kaput" in result.failures["bomb"].traceback
        assert result.quiescent
        assert sorted(result.trace.messages_on(C).items) == [0, 1, 2]

    def test_failure_records_step_and_exception(self):
        def bomb():
            yield Send(B, 0)
            raise KeyError("boom")

        result = run_supervised({"bomb": bomb}, [B, C],
                                FirstOracle(), policy=None)
        failure = result.failures["bomb"]
        assert isinstance(failure.error, KeyError)
        assert failure.step >= 1
        assert "KeyError" in failure.traceback


class TestRestartPolicy:
    def test_backoff_is_exponential(self):
        policy = RestartPolicy(max_restarts=4, backoff_initial=8,
                               backoff_factor=2)
        assert [policy.delay(n) for n in (1, 2, 3)] == [8, 16, 32]
        with pytest.raises(ValueError):
            policy.delay(0)

    def test_default_policy_delays_unchanged(self):
        # the cap/jitter generalization must not move the defaults:
        # every recorded digest depends on these exact step budgets
        assert [RestartPolicy().delay(n) for n in (1, 2, 3)] == \
            [8, 16, 32]

    def test_zero_max_restarts_fails_immediately(self):
        def bomb():
            yield Send(B, 0)
            raise RuntimeError("kaput")

        result = run_supervised(
            {"bomb": bomb, "copy": copier}, [B, C], RandomOracle(1),
            policy=RestartPolicy(max_restarts=0),
        )
        assert result.restarts["bomb"] == 0
        assert "bomb" in result.failed_agents
        # the rest of the network still ran to quiescence
        assert result.quiescent

    def test_backoff_cap_saturates(self):
        policy = RestartPolicy(backoff_initial=1, backoff_factor=2,
                               backoff_cap=8)
        assert [policy.delay(n) for n in range(1, 7)] == \
            [1, 2, 4, 8, 8, 8]

    def test_no_cap_is_unbounded(self):
        policy = RestartPolicy(backoff_initial=1, backoff_factor=2)
        assert policy.delay(20) == 2 ** 19

    def test_jitter_zero_is_exact(self):
        policy = RestartPolicy(backoff_initial=4, backoff_factor=3)
        assert policy.jittered_delay(2, seed=99) == 12.0

    def test_jitter_stays_within_band(self):
        policy = RestartPolicy(backoff_initial=10, backoff_factor=1,
                               jitter=0.5)
        for n in range(1, 20):
            d = policy.jittered_delay(n, seed=5, salt="x")
            assert 10.0 <= d <= 15.0

    def test_seeded_jitter_is_deterministic(self):
        from repro.obs.recorder import stable_digest

        policy = RestartPolicy(backoff_initial=1, backoff_factor=2,
                               backoff_cap=8, jitter=0.5)
        a = policy.retry_schedule(6, seed=42, salt="cell")
        b = policy.retry_schedule(6, seed=42, salt="cell")
        assert a == b
        assert len(a) == 6
        # same seed ⇒ same retry schedule, pinned by digest: any
        # drift in the jitter derivation breaks recorded fleet runs
        assert stable_digest(a) == (
            "14721deeee3824d94277091537fcbff3"
            "c6d8e52ab4bbc3116d3baa285b75eebb")

    def test_distinct_seeds_and_salts_decorrelate(self):
        policy = RestartPolicy(jitter=0.5)
        base = policy.retry_schedule(4, seed=1, salt="cell")
        assert policy.retry_schedule(4, seed=2, salt="cell") != base
        assert policy.retry_schedule(4, seed=1, salt="other") != base

    def test_flaky_agent_recovers_after_restart(self):
        incarnations = []

        def flaky_factory():
            incarnations.append(None)
            first = len(incarnations) == 1

            def body():
                yield Send(B, 0)
                if first:
                    raise RuntimeError("transient")
                yield Send(B, 1)
            return body()

        result = run_supervised({"flaky": flaky_factory}, [B, C],
                                RandomOracle(0))
        assert result.restarts["flaky"] == 1
        assert result.failed_agents == []  # recovered
        assert result.quiescent
        # both incarnations ran: 0 (then crash), then 0, 1
        assert result.trace.messages_on(B).items == (0, 0, 1)

    def test_restarts_exhausted_leaves_agent_failed(self):
        def dies():
            def body():
                yield Send(B, 0)
                raise RuntimeError("permanent")
            return body()

        result = run_supervised(
            {"dies": dies}, [B, C], RandomOracle(0),
            policy=RestartPolicy(max_restarts=2, backoff_initial=2),
        )
        assert result.restarts["dies"] == 2
        assert result.failed_agents == ["dies"]
        assert result.trace.messages_on(B).items == (0, 0, 0)

    def test_backoff_delays_the_respawn(self):
        def dies():
            def body():
                yield Send(B, 0)
                raise RuntimeError("x")
            return body()

        slow = run_supervised(
            {"dies": dies}, [B, C], FirstOracle(),
            policy=RestartPolicy(max_restarts=1, backoff_initial=40),
        )
        fast = run_supervised(
            {"dies": dies}, [B, C], FirstOracle(),
            policy=RestartPolicy(max_restarts=1, backoff_initial=2),
        )
        # identical work, but the slow policy waits out idle steps
        assert slow.trace == fast.trace
        assert slow.steps > fast.steps

    def test_solo_agent_in_backoff_is_not_quiescent(self):
        def dies():
            def body():
                yield Send(B, 0)
                raise RuntimeError("x")
            return body()

        runtime = SupervisedRuntime(
            {"dies": dies}, [B, C],
            policy=RestartPolicy(max_restarts=1, backoff_initial=20),
        )
        runtime.step(FirstOracle())  # send
        runtime.step(FirstOracle())  # crash -> restart scheduled
        assert not runtime.is_quiescent()


class TestWatchdog:
    def test_fires_on_stalled_agent(self):
        def worker():
            while True:
                yield Send(B, 0)
                yield Recv(C)

        result = run_supervised(
            {"w": lambda: stall_at_step(worker(), 1)}, [B, C],
            RandomOracle(3), max_steps=100_000, watchdog_limit=50,
        )
        assert result.watchdog_fired
        assert result.steps < 200  # terminated well before the budget
        assert "no history growth" in result.diagnosis
        assert "w: ready" in result.diagnosis

    def test_deterministic_across_repeated_runs(self):
        def worker():
            while True:
                yield Send(B, 0)
                yield Recv(C)

        def once():
            return run_supervised(
                {"w": lambda: stall_at_step(worker(), 1)}, [B, C],
                RandomOracle(3), max_steps=100_000, watchdog_limit=50,
            )

        first, second = once(), once()
        assert first.steps == second.steps
        assert first.trace == second.trace
        assert first.diagnosis == second.diagnosis

    def test_black_hole_retransmission_is_caught(self):
        # unfair loss: every send eaten, so the history never grows and
        # the sender's retransmit loop is a livelock
        def chatter():
            while True:
                yield Send(B, 0)
                yield Choose(2)

        plan = FaultPlan({B: DropFault(seed=0, p=1.0,
                                       max_consecutive_drops=None)})
        result = run_supervised(
            {"chatter": chatter}, [B, C], RandomOracle(0),
            max_steps=50_000, fault_plan=plan, watchdog_limit=100,
        )
        assert result.watchdog_fired
        assert result.steps < 500
        assert "dropped: b×" in result.diagnosis

    def test_quiescent_network_does_not_trip_watchdog(self):
        def short():
            yield Send(B, 0)

        result = run_supervised({"s": short}, [B, C],
                                FirstOracle(), watchdog_limit=1)
        assert result.quiescent
        assert not result.watchdog_fired

    def test_disabled_watchdog_runs_to_budget(self):
        def spin():
            while True:
                yield Choose(1)

        result = run_supervised({"s": spin}, [B, C],
                                FirstOracle(), max_steps=300,
                                watchdog_limit=None)
        assert not result.watchdog_fired
        assert result.steps == 300
