"""Tests for repro.par.fleet — the supervised grid coordinator.

The fleet's contract has three legs: (1) on a clean grid it is
invisible — same outcomes, same bit-for-bit schedule digests as the
serial harness; (2) under injected chaos (worker SIGKILLs, wedged
cells) it degrades instead of aborting — completed results are never
lost, failed cells retry with deterministic backoff, poison cells are
quarantined into re-executable bundles; (3) everything it does is a
pure function of the seeds, so a chaotic run replays exactly.
"""

import json
import time

import pytest

from repro import par
from repro.faults.harness import INFRA_OUTCOMES
from repro.faults.models import ChannelFault
from repro.faults.plan import FaultPlan
from repro.par import CellTask, ChaosSpec, FleetPolicy
from repro.par.fleet import replay_quarantined_cell, run_fleet

FORK_AVAILABLE = "fork" in __import__(
    "multiprocessing").get_all_start_methods()

pytestmark = pytest.mark.skipif(
    not FORK_AVAILABLE, reason="fleet executor requires fork")

#: Fast retries so chaos tests don't sleep through real backoff.
FAST = dict(backoff_unit_s=0.002)


def _grid_tasks(seeds=(0,)):
    sc = par.get_scenario("dfm")
    return [CellTask("dfm", plan, seed, sc.max_steps)
            for plan in sc.plans for seed in seeds]


class _WedgeFault(ChannelFault):
    """Wedges the worker on first delivery — deadline-test fuel."""

    def on_send(self, message):
        time.sleep(600)
        return [message]  # pragma: no cover - killed long before


def _build_wedge() -> par.Scenario:
    sc = par.get_scenario("dfm")
    b = sc.channels[0]
    return par.Scenario(
        name="fleet-wedge", agents=sc.agents, channels=sc.channels,
        spec=sc.spec,
        plans={"none": sc.plans["none"],
               "wedge": lambda: FaultPlan({b: _WedgeFault()},
                                          name="wedge")},
        max_steps=sc.max_steps, depth=sc.depth)


@pytest.fixture
def wedge_scenario():
    par.register_scenario("fleet-wedge", _build_wedge)
    yield "fleet-wedge"
    par._SCENARIOS.pop("fleet-wedge", None)


class TestChaosSpec:
    def test_parse(self):
        spec = ChaosSpec.parse("kill-worker:0.3", seed=7)
        assert spec.kill_worker_p == 0.3
        assert spec.seed == 7
        assert ChaosSpec.parse("kill-worker").kill_worker_p == 0.2

    @pytest.mark.parametrize("bad", [
        "drop-disk:0.3", "kill-worker:nope", "kill-worker:1.5",
        "kill-worker:-0.1",
    ])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            ChaosSpec.parse(bad)

    def test_kill_decision_is_deterministic(self):
        spec = ChaosSpec(kill_worker_p=0.5, seed=3)
        task = CellTask("dfm", "drop", 1, 2000)
        assert spec.kills(task, 1) == spec.kills(task, 1)
        # the decision is per (cell, attempt): across many cells and
        # attempts both outcomes occur at p=0.5
        decisions = {spec.kills(CellTask("dfm", "drop", s, 2000), a)
                     for s in range(10) for a in (1, 2)}
        assert decisions == {True, False}

    def test_zero_probability_never_kills(self):
        spec = ChaosSpec(kill_worker_p=0.0, seed=3)
        task = CellTask("dfm", "drop", 1, 2000)
        assert not any(spec.kills(task, a) for a in range(1, 20))


class TestCleanFleet:
    def test_matches_serial_bit_for_bit(self):
        serial = par.run_conformance_parallel(
            "dfm", seeds=range(2), workers=1)
        fleet = par.run_conformance_parallel(
            "dfm", seeds=range(2), workers=2)
        assert fleet.digest() == serial.digest()
        assert not fleet.degraded
        assert fleet.fleet_stats["completed"] == len(serial.cases)
        assert fleet.fleet_stats["retries"] == 0
        assert fleet.fleet_stats["respawns"] == 0

    def test_single_cell_forced_through_fleet(self):
        # a needs_fleet policy overrides the serial fallback even for
        # a one-cell, one-worker grid
        sc = par.get_scenario("dfm")
        report = par.run_conformance_parallel(
            "dfm", seeds=[0], plans=["none"], workers=1,
            fleet=FleetPolicy(cell_timeout_s=30.0, **FAST))
        assert len(report.cases) == 1
        assert report.all_conform
        assert report.fleet_stats is not None
        serial = par.run_conformance_parallel(
            "dfm", seeds=[0], plans=["none"], workers=1)
        assert report.digest() == serial.digest()
        assert sc.plans  # fixture sanity

    def test_traced_fleet_merges_and_emits_events(self):
        from repro.obs.sinks import RingBufferSink
        from repro.obs.tracer import Tracer

        ring = RingBufferSink()
        tracer = Tracer([ring])
        report = par.run_conformance_parallel(
            "dfm", seeds=[0], workers=2, tracer=tracer)
        assert report.all_conform
        names = {r.name for r in ring if r.kind == "event"}
        assert "fleet.spawn" in names
        assert "fleet.dispatch" in names
        tracks = {r.track for r in ring}
        assert any(t.startswith("fleet.w") for t in tracks)
        # per-cell worker records still merge with grid-cell suffixes
        for plan in par.get_scenario("dfm").plans:
            assert any(t.endswith(f"@{plan}×0") for t in tracks), plan


class TestChaosProperty:
    """The acceptance property: kill-worker chaos up to p=0.3 with
    retries >= 2 — grid completes, surviving digests bit-identical to
    serial, completed results never lost."""

    @pytest.mark.parametrize("chaos_seed", [1, 7, 13])
    def test_surviving_cells_bit_identical_to_serial(
            self, chaos_seed, tmp_path):
        serial = par.run_conformance_parallel(
            "dfm", seeds=range(2), workers=1)
        by_coord = {(c.plan, c.seed): c for c in serial.cases}
        policy = FleetPolicy(
            retries=2, quarantine_dir=str(tmp_path / "q"),
            chaos=ChaosSpec(kill_worker_p=0.3, seed=chaos_seed),
            **FAST)
        report = par.run_conformance_parallel(
            "dfm", seeds=range(2), workers=2, fleet=policy)
        assert len(report.cases) == len(serial.cases)
        for case in report.cases:
            if case.infra_failure:
                assert case.outcome == "quarantined"
                continue
            ref = by_coord[(case.plan, case.seed)]
            assert case.outcome == ref.outcome
            assert case.schedule.digest() == ref.schedule.digest()
        stats = report.fleet_stats
        assert stats["completed"] + stats["quarantined"] == \
            len(report.cases)
        if not report.degraded:
            assert report.digest() == serial.digest()
        assert report.surviving_digest() == serial.surviving_digest() \
            or report.degraded

    def test_retry_recovers_from_kills(self):
        # fresh coins per attempt: with p<1 and enough retries every
        # cell eventually completes; pick a seed where chaos does bite
        tasks = _grid_tasks(seeds=range(2))

        def recovers(spec):
            # some cell is killed on attempt 1, and every killed cell
            # flips clean coins on its retries
            killed = [t for t in tasks if spec.kills(t, 1)]
            return killed and not any(spec.kills(t, a)
                                      for t in killed
                                      for a in (2, 3, 4))

        chaos = next(
            spec for spec in
            (ChaosSpec(kill_worker_p=0.4, seed=s) for s in range(100))
            if recovers(spec))
        report = par.run_conformance_parallel(
            "dfm", seeds=range(2), workers=2,
            fleet=FleetPolicy(retries=3, chaos=chaos, **FAST))
        assert report.all_conform
        assert not report.degraded
        assert report.fleet_stats["crashes"] > 0
        assert report.fleet_stats["respawns"] > 0
        killed = [c for c in report.cases if c.attempts > 1]
        assert killed, "chosen chaos seed should have killed a cell"

    def test_completed_results_retained_when_worker_dies(self):
        # the satellite fix: a worker dying mid-grid must not discard
        # cells that already streamed back.  One worker runs the grid
        # serially; chaos kills exactly one later cell's first
        # attempt, so earlier completions are provably already in.
        tasks = _grid_tasks(seeds=range(2))
        target = tasks[3]

        def only_target(spec):
            hits = [t for t in tasks if spec.kills(t, 1)]
            return hits == [target] and not any(
                spec.kills(target, a) for a in (2, 3))

        chaos = next(
            spec for spec in
            (ChaosSpec(kill_worker_p=0.15, seed=s)
             for s in range(5000))
            if only_target(spec))
        report = par.run_conformance_parallel(
            "dfm", seeds=range(2), workers=1,
            fleet=FleetPolicy(retries=2, cell_timeout_s=60.0,
                              chaos=chaos, **FAST))
        assert report.all_conform
        assert report.fleet_stats["crashes"] == 1
        by_coord = {(c.plan, c.seed): c for c in report.cases}
        assert by_coord[(target.plan, target.seed)].attempts == 2
        others = [c for c in report.cases
                  if (c.plan, c.seed) != (target.plan, target.seed)]
        assert all(c.attempts == 1 for c in others)


class TestDeadlines:
    def test_wedged_cell_times_out_and_is_quarantined(
            self, wedge_scenario, tmp_path):
        qdir = tmp_path / "q"
        report = par.run_conformance_parallel(
            wedge_scenario, seeds=[0], workers=2,
            fleet=FleetPolicy(cell_timeout_s=0.4, retries=1,
                              quarantine_dir=str(qdir), **FAST))
        outcomes = report.outcomes()
        assert outcomes["quarantined"] == 1
        assert outcomes["conforms"] == 1  # the clean plan survived
        assert report.degraded
        assert report.fleet_stats["timeouts"] == 2  # 1 + 1 retry
        [lost] = [c for c in report.cases if c.infra_failure]
        assert lost.plan == "wedge"
        assert lost.attempts == 2
        assert "timeout" in lost.detail and "bundle" in lost.detail
        bundle = qdir / f"{wedge_scenario}-wedge-seed0"
        assert (bundle / "cell.json").is_file()

    def test_timeout_without_quarantine_dir(self, wedge_scenario):
        report = par.run_conformance_parallel(
            wedge_scenario, seeds=[0], plans=["wedge"], workers=1,
            fleet=FleetPolicy(cell_timeout_s=0.4, retries=0, **FAST))
        [case] = report.cases
        assert case.outcome == "timeout"
        assert case.result is None
        assert case.infra_failure


class TestQuarantine:
    @pytest.fixture
    def bundle(self, tmp_path):
        qdir = tmp_path / "q"
        policy = FleetPolicy(
            retries=1, quarantine_dir=str(qdir),
            chaos=ChaosSpec(kill_worker_p=1.0, seed=1), **FAST)
        report = par.run_conformance_parallel(
            "dfm", seeds=[0], plans=["drop"], workers=1,
            fleet=policy)
        [case] = report.cases
        assert case.outcome == "quarantined"
        return qdir / "dfm-drop-seed0"

    def test_bundle_layout(self, bundle):
        assert bundle.is_dir()
        cell = json.loads((bundle / "cell.json").read_text())
        assert cell["kind"] == "quarantined-cell"
        assert cell["task"] == {"scenario": "dfm", "plan": "drop",
                                "seed": 0, "max_steps": 2000,
                                "record": True}
        assert cell["final"] == {"outcome": "quarantined",
                                 "failure": "crashed"}
        assert len(cell["attempts"]) == 2
        for entry in cell["attempts"]:
            assert entry["failure"] == "crashed"
            # worker stderr (the chaos banner) was captured per attempt
            stderr = (bundle / entry["stderr_file"]).read_text()
            assert "chaos: SIGKILL" in stderr
        assert "python -m repro replay" in \
            (bundle / "README.md").read_text()

    def test_bundle_replays_and_reproduces(self, bundle):
        case, recorded, reproduced = replay_quarantined_cell(bundle)
        assert reproduced
        assert recorded["failure"] == "crashed"
        assert case.outcome == "crashed"
        assert case.attempts == 2  # same retry policy re-applied

    def test_replay_accepts_dir_or_cell_json(self, bundle):
        _, _, by_dir = replay_quarantined_cell(bundle)
        _, _, by_file = replay_quarantined_cell(bundle / "cell.json")
        assert by_dir == by_file

    def test_replay_rejects_non_bundle(self, tmp_path):
        bogus = tmp_path / "cell.json"
        bogus.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(ValueError):
            replay_quarantined_cell(bogus)

    def test_infra_outcomes_never_cached(self, tmp_path):
        from repro.cache import CacheStore

        store = CacheStore(tmp_path / "cache")
        policy = FleetPolicy(
            retries=0, chaos=ChaosSpec(kill_worker_p=1.0, seed=1),
            quarantine_dir=str(tmp_path / "q"), **FAST)
        report = par.run_conformance_parallel(
            "dfm", seeds=[0], workers=2, fleet=policy, cache=store)
        assert all(c.outcome == "quarantined" for c in report.cases)
        assert store.counters()["write"] == 0
        # a later clean run must re-execute (cold) and cache normally
        clean = par.run_conformance_parallel(
            "dfm", seeds=[0], workers=2, cache=store)
        assert clean.all_conform
        assert not any(c.cached for c in clean.cases)
        assert store.counters()["write"] == len(clean.cases)


class TestBackoffDeterminism:
    def test_backoff_is_deterministic_per_cell(self):
        policy = FleetPolicy(jitter_seed=9)
        a = [policy.backoff_s(n, salt="dfm|drop|0")
             for n in range(1, 5)]
        b = [policy.backoff_s(n, salt="dfm|drop|0")
             for n in range(1, 5)]
        assert a == b
        # distinct cells de-synchronize under the same seed
        c = [policy.backoff_s(n, salt="dfm|drop|1")
             for n in range(1, 5)]
        assert a != c

    def test_run_fleet_validates_empty(self):
        cases, stats = run_fleet([], workers=4)
        assert cases == {}
        assert stats["completed"] == 0


class TestDegradedReporting:
    def test_report_flags_and_renderer(self, tmp_path):
        from repro.report import render_conformance_report

        policy = FleetPolicy(
            retries=0, chaos=ChaosSpec(kill_worker_p=1.0, seed=2),
            quarantine_dir=str(tmp_path / "q"), **FAST)
        report = par.run_conformance_parallel(
            "dfm", seeds=[0], workers=2, fleet=policy)
        assert report.degraded
        assert report.surviving_cases == []
        assert report.genuine_failures == []  # infra loss ≠ verdict
        assert not report.all_conform
        assert set(report.outcomes()) <= INFRA_OUTCOMES
        text = render_conformance_report(report)
        assert "DEGRADED" in text
        assert "LOST" in text
        assert "fleet workers:" in text
        assert "chaos: kill-worker:1.0" in text
        assert "FAIL" not in text  # no genuine verdicts to show

    def test_clean_report_not_degraded(self):
        report = par.run_conformance_parallel(
            "dfm", seeds=[0], workers=1)
        assert not report.degraded
        assert report.surviving_cases == report.cases
        assert "DEGRADED" not in report.summary()


class TestWorkerErrors:
    def test_raising_cell_is_retried_then_reported(self, tmp_path):
        # a scenario whose builder raises inside the worker: the err
        # path (exception, not death) must also retry and quarantine
        name = "fleet-raises"

        def build():
            raise RuntimeError("scenario exploded in the worker")

        par.register_scenario(name, build)
        try:
            task = CellTask(name, "none", 0, 100)
            policy = FleetPolicy(
                retries=1, quarantine_dir=str(tmp_path / "q"), **FAST)
            cases, stats = run_fleet([(0, task)], workers=1,
                                     policy=policy)
            assert cases[0].outcome == "quarantined"
            assert stats["errors"] == 2
            assert stats["respawns"] == 0  # worker survived the raise
            cell = json.loads(
                (tmp_path / "q" / f"{name}-none-seed0" /
                 "cell.json").read_text())
            assert "scenario exploded" in \
                cell["attempts"][0]["detail"]
        finally:
            par._SCENARIOS.pop(name, None)
