"""Unit tests for the seeded channel fault models."""

import pytest

from repro.channels.channel import Channel
from repro.faults.models import (
    ChannelFault,
    CorruptFault,
    DelayFault,
    DropFault,
    DuplicateFault,
    FaultPipeline,
    ReorderFault,
)

B = Channel("b", alphabet={0, 1, 2})


def feed(fault, stream):
    """Push ``stream`` through ``fault``; return deliveries in order."""
    out = []
    for message in stream:
        out.extend(fault.on_send(message))
    out.extend(fault.flush())
    return out


class TestDeterminism:
    @pytest.mark.parametrize("make", [
        lambda: DropFault(seed=7, p=0.5),
        lambda: DuplicateFault(seed=7, p=0.5),
        lambda: ReorderFault(seed=7, p=0.5),
        lambda: DelayFault(seed=7, p=0.5),
    ])
    def test_same_seed_same_perturbation(self, make):
        stream = list(range(30)) * 2
        first = feed(make(), [m % 3 for m in stream])
        second = feed(make(), [m % 3 for m in stream])
        assert first == second

    def test_different_seeds_differ(self):
        stream = [m % 3 for m in range(60)]
        outs = {tuple(feed(DropFault(seed=s, p=0.5), stream))
                for s in range(5)}
        assert len(outs) > 1


class TestDropFault:
    def test_fairness_bound_caps_consecutive_drops(self):
        fault = DropFault(seed=1, p=1.0, max_consecutive_drops=3)
        delivered = [bool(fault.on_send(0)) for _ in range(40)]
        # p=1 drops whenever allowed: exactly every 4th send survives
        consecutive = 0
        for got in delivered:
            if got:
                consecutive = 0
            else:
                consecutive += 1
                assert consecutive <= 3

    def test_unfair_drop_loses_everything(self):
        fault = DropFault(seed=1, p=1.0, max_consecutive_drops=None)
        assert feed(fault, [0] * 50) == []
        assert len(fault.dropped) == 50

    def test_zero_probability_is_transparent(self):
        fault = DropFault(seed=1, p=0.0)
        assert feed(fault, [0, 1, 2]) == [0, 1, 2]


class TestDuplicateFault:
    def test_duplicates_are_adjacent_copies(self):
        fault = DuplicateFault(seed=3, p=1.0,
                               max_consecutive_duplicates=None)
        assert feed(fault, [0, 1]) == [0, 0, 1, 1]

    def test_consecutive_duplication_bound(self):
        fault = DuplicateFault(seed=3, p=1.0,
                               max_consecutive_duplicates=2)
        out = feed(fault, [0] * 9)
        # pattern: dup, dup, single, dup, dup, single, ...
        assert len(out) == 9 + 6


class TestReorderFault:
    def test_is_a_permutation_with_bounded_displacement(self):
        stream = list(range(40))
        fault = ReorderFault(seed=5, p=0.6, max_hold=3)
        out = []
        positions = {}
        for i, m in enumerate(stream):
            out.extend(fault.on_send(m))
        out.extend(fault.flush())
        assert sorted(out) == stream  # nothing lost or invented
        for i, m in enumerate(out):
            positions[m] = i
        # a message is overtaken by at most max_hold successors
        for m in stream:
            assert positions[m] - m <= 3

    def test_flush_releases_stash(self):
        fault = ReorderFault(seed=0, p=1.0, max_hold=10)
        assert fault.on_send(1) == []
        assert fault.held() == [1]
        assert fault.flush() == [1]
        assert fault.held() == []


class TestCorruptFault:
    def test_corrupts_within_alphabet(self):
        fault = CorruptFault(seed=2, p=1.0, max_consecutive=None)
        fault.bind(B)
        out = feed(fault, [0] * 20)
        assert out and all(m in {1, 2} for m in out)

    def test_custom_corruptor(self):
        fault = CorruptFault(seed=2, p=1.0, max_consecutive=None,
                             corrupt=lambda m: (m + 1) % 3)
        assert feed(fault, [0, 1, 2]) == [1, 2, 0]

    def test_requires_alphabet_or_function(self):
        unbounded = Channel("raw")
        fault = CorruptFault(seed=2, p=1.0)
        with pytest.raises(ValueError):
            fault.bind(unbounded)


class TestDelayFault:
    def test_everything_eventually_delivered(self):
        fault = DelayFault(seed=4, p=0.7, max_delay=3)
        out = []
        for m in range(20):
            out.extend(fault.on_send(m % 3))
            out.extend(fault.on_step())
        # release whatever is still parked
        out.extend(fault.flush())
        assert len(out) == 20

    def test_step_release_respects_ttl_bound(self):
        fault = DelayFault(seed=4, p=1.0, max_delay=2)
        assert fault.on_send(0) == []
        released = []
        for _ in range(2):
            released.extend(fault.on_step())
        assert released == [0]

    def test_held_reports_in_flight(self):
        fault = DelayFault(seed=4, p=1.0, max_delay=5)
        fault.on_send(1)
        assert fault.held() == [1]


class TestFaultPipeline:
    def test_composes_left_to_right(self):
        dup = DuplicateFault(seed=0, p=1.0,
                             max_consecutive_duplicates=None)
        corrupt = CorruptFault(seed=0, p=1.0, max_consecutive=None,
                               corrupt=lambda m: (m + 1) % 3)
        pipe = FaultPipeline([dup, corrupt])
        assert pipe.on_send(0) == [1, 1]

    def test_flush_drains_every_stage(self):
        reorder = ReorderFault(seed=1, p=1.0, max_hold=10)
        delay = DelayFault(seed=1, p=1.0, max_delay=10)
        pipe = FaultPipeline([reorder, delay])
        pipe.on_send(0)  # stashed upstream
        pipe.on_send(1)  # released through, parked downstream
        assert pipe.held()
        flushed = pipe.flush()
        assert sorted(flushed) == sorted([0, 1])
        assert pipe.held() == []

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            FaultPipeline([])

    def test_base_fault_is_identity(self):
        assert feed(ChannelFault(), [0, 1, 2]) == [0, 1, 2]
