"""FaultPlan wiring into the runtime, and agent-body injectors."""

import pytest

from repro.channels.channel import Channel
from repro.faults import (
    CorruptFault,
    DelayFault,
    DropFault,
    FaultPlan,
    InjectedCrash,
    crash_at_step,
    stall_at_step,
)
from repro.kahn.effects import Recv, Send
from repro.kahn.runtime import Runtime
from repro.kahn.scheduler import FirstOracle, RandomOracle, run_network

B = Channel("b", alphabet={0, 1, 2})
C = Channel("c", alphabet={0, 1, 2})


def source(channel, messages):
    for m in messages:
        yield Send(channel, m)


def copier():
    while True:
        m = yield Recv(B)
        yield Send(C, m)


class TestFaultPlanRouting:
    def test_unfaulted_channels_pass_through(self):
        plan = FaultPlan({B: DropFault(seed=0, p=1.0,
                                       max_consecutive_drops=None)})
        assert plan.on_send(C, 1) == [1]
        assert plan.on_send(B, 1) == []

    def test_sequence_becomes_pipeline_and_binds(self):
        plan = FaultPlan({B: [DropFault(seed=0, p=0.0),
                              CorruptFault(seed=0, p=1.0,
                                           max_consecutive=None)]})
        # CorruptFault got bound to B's alphabet through the plan
        assert plan.on_send(B, 0) != [0]
        assert all(m in {1, 2} for m in plan.on_send(B, 0))

    def test_describe_names_channels_and_faults(self):
        plan = FaultPlan({B: DropFault(seed=0)}, name="demo")
        text = plan.describe()
        assert "demo" in text and "b" in text and "Drop" in text


class TestRuntimeIntegration:
    def test_dropped_send_leaves_no_event(self):
        plan = FaultPlan({B: DropFault(seed=0, p=1.0,
                                       max_consecutive_drops=None)})
        result = run_network({"s": source(B, [0, 1, 2])}, [B, C],
                             FirstOracle(), fault_plan=plan)
        assert result.quiescent
        assert result.trace.length() == 0
        assert result.undelivered == {}

    def test_trace_records_post_fault_stream(self):
        plan = FaultPlan({B: CorruptFault(
            seed=0, p=1.0, max_consecutive=None,
            corrupt=lambda m: (m + 1) % 3)})
        result = run_network(
            {"s": source(B, [0, 1]), "c": copier()}, [B, C],
            FirstOracle(), fault_plan=plan,
        )
        # the copier saw (and forwarded) the corrupted stream
        assert result.trace.messages_on(B).items == (1, 2)
        assert result.trace.messages_on(C).items == (1, 2)

    def test_delayed_messages_flushed_before_quiescence(self):
        plan = FaultPlan({B: DelayFault(seed=0, p=1.0, max_delay=50)})
        result = run_network(
            {"s": source(B, [0, 1, 2]), "c": copier()}, [B, C],
            FirstOracle(), max_steps=500, fault_plan=plan,
        )
        # quiescence is only reported once the wire is empty, so every
        # parked message got through (delay may reorder) and was copied
        assert result.quiescent
        assert sorted(result.trace.messages_on(C).items) == [0, 1, 2]

    def test_fault_output_must_stay_in_alphabet(self):
        plan = FaultPlan({B: CorruptFault(seed=0, p=1.0,
                                          max_consecutive=None,
                                          corrupt=lambda m: 99)})
        with pytest.raises(ValueError, match="fault model"):
            run_network({"s": source(B, [0])}, [B, C],
                        FirstOracle(), fault_plan=plan)


class TestInjectors:
    def test_crash_at_step_counts_effects(self):
        plan = FaultPlan(agent_faults={
            "s": lambda body: crash_at_step(body, 2)})
        result = run_network({"s": source(B, [0, 1, 2])}, [B, C],
                             FirstOracle(), fault_plan=plan)
        assert result.trace.messages_on(B).items == (0, 1)
        assert result.failed_agents == ["s"]
        assert isinstance(result.failures["s"].error, InjectedCrash)

    def test_crash_at_zero_crashes_before_first_effect(self):
        plan = FaultPlan(agent_faults={
            "s": lambda body: crash_at_step(body, 0)})
        result = run_network({"s": source(B, [0])}, [B, C],
                             FirstOracle(), fault_plan=plan)
        assert result.trace.length() == 0
        assert result.failed_agents == ["s"]

    def test_crash_beyond_body_length_halts_normally(self):
        plan = FaultPlan(agent_faults={
            "s": lambda body: crash_at_step(body, 100)})
        result = run_network({"s": source(B, [0])}, [B, C],
                             FirstOracle(), fault_plan=plan)
        assert result.failed_agents == []
        assert result.halted_agents == ["s"]

    def test_stall_spins_without_history_growth(self):
        plan = FaultPlan(agent_faults={
            "s": lambda body: stall_at_step(body, 1)})
        result = run_network({"s": source(B, [0, 1, 2])}, [B, C],
                             RandomOracle(0), max_steps=50,
                             fault_plan=plan)
        assert not result.quiescent  # perpetually ready, never done
        assert result.steps == 50
        assert result.trace.messages_on(B).items == (0,)
