"""Unit tests for repro.functions.logic (R and AND, §4.3/§4.5)."""

import pytest

from repro.channels.channel import Channel
from repro.functions.base import chan
from repro.functions.logic import (
    and_bit,
    and_map,
    and_of,
    nonstrict_and_bit,
    r_bit,
    r_map,
    r_of,
)
from repro.order.flat import BOTTOM
from repro.seq.finite import EMPTY, fseq
from repro.traces.trace import Trace

B = Channel("b", alphabet={"T", "F"})
C = Channel("c", alphabet={"T", "F"})


class TestR:
    def test_table(self):
        # the §4.3 table: R(T) = T, R(F) = T, R(⊥) = ⊥
        assert r_bit("T") == "T"
        assert r_bit("F") == "T"
        assert r_bit(BOTTOM) is BOTTOM

    def test_rejects_foreign(self):
        with pytest.raises(ValueError):
            r_bit(3)

    def test_r_map(self):
        assert r_map(fseq("T", "F", "T")) == fseq("T", "T", "T")

    def test_r_map_empty(self):
        assert r_map(EMPTY) == EMPTY

    def test_r_of_trace_fn(self):
        f = r_of(chan(B))
        t = Trace.from_pairs([(B, "F")])
        assert f.apply(t).take(5) == fseq("T")

    def test_monotone_on_sequences(self):
        assert r_map(fseq("T")).is_prefix_of(r_map(fseq("T", "F")))


class TestStrictAnd:
    def test_truth_table(self):
        assert and_bit("T", "T") == "T"
        assert and_bit("T", "F") == "F"
        assert and_bit("F", "T") == "F"
        assert and_bit("F", "F") == "F"

    def test_strictness(self):
        assert and_bit(BOTTOM, "T") is BOTTOM
        assert and_bit("F", BOTTOM) is BOTTOM

    def test_rejects_foreign(self):
        with pytest.raises(ValueError):
            and_bit("T", 1)

    def test_and_map_min_length(self):
        out = and_map(fseq("T", "T", "F"), fseq("T", "F"))
        assert out == fseq("T", "F")

    def test_and_map_empty(self):
        assert and_map(EMPTY, fseq("T")) == EMPTY

    def test_and_of_trace_fn(self):
        f = and_of(chan(B), chan(C))
        t = Trace.from_pairs([(B, "T"), (C, "T"), (B, "F"), (C, "T")])
        assert f.apply(t).take(5) == fseq("T", "F")

    def test_monotone_in_each_argument(self):
        a1, a2 = fseq("T"), fseq("T", "F")
        b1, b2 = fseq("F"), fseq("F", "T")
        assert and_map(a1, b1).is_prefix_of(and_map(a2, b1))
        assert and_map(a1, b1).is_prefix_of(and_map(a1, b2))


class TestNonstrictAnd:
    def test_f_dominates_bottom(self):
        assert nonstrict_and_bit("F", BOTTOM) == "F"
        assert nonstrict_and_bit(BOTTOM, "F") == "F"

    def test_needs_both_for_t(self):
        assert nonstrict_and_bit("T", BOTTOM) is BOTTOM
        assert nonstrict_and_bit("T", "T") == "T"

    def test_why_the_paper_uses_strict_and(self):
        """§4.5 reader exercise: a pointwise non-strict AND is not
        prefix-stable at the sequence level.

        With input prefixes b=⟨⟩ (⊥ at position 0) and c=⟨F⟩, the
        non-strict rule would commit the 0-th output to F; if b later
        delivers position 0 the output cannot change — fine — but for
        c=⟨T⟩ it would have to *wait*, making the output's length
        depend non-monotonically on message values.  The concrete
        violation: output length would not be a function of the pair of
        lengths, breaking the min-length monotonicity argument.
        """
        # the strict lift is prefix-stable:
        assert and_map(EMPTY, fseq("F")) == EMPTY
        # a hypothetical non-strict lift would output ⟨F⟩ there, yet
        # and_map(⟨T⟩, ⟨F⟩) = ⟨F⟩ too — but and_map(⟨T⟩, ⟨T⟩) = ⟨T⟩,
        # so ⟨F⟩ ⋢ output-on-extension: non-monotone.
        assert and_map(fseq("T"), fseq("T")) == fseq("T")
        assert not fseq("F").is_prefix_of(and_map(fseq("T"), fseq("T")))
