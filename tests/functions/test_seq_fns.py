"""Unit tests for repro.functions.seq_fns (the paper's operations)."""

import itertools

from repro.channels.channel import Channel
from repro.functions.base import chan
from repro.functions.seq_fns import (
    affine,
    brock_f,
    brock_f_of,
    count_ticks,
    even_filter,
    even_of,
    false_filter,
    odd_filter,
    odd_of,
    prepend_block_of,
    prepend_of,
    scale,
    select_by_oracle,
    tag_with,
    tagged_filter,
    true_filter,
    untag,
    until_first_f,
)
from repro.seq.finite import EMPTY, fseq
from repro.seq.lazy import LazySeq
from repro.traces.trace import Trace

D = Channel("d", alphabet={0, 1, 2, 3})


class TestParityFilters:
    def test_even(self):
        assert even_filter(fseq(0, 1, 2, 3)) == fseq(0, 2)

    def test_odd(self):
        assert odd_filter(fseq(0, 1, 2, 3)) == fseq(1, 3)

    def test_negative_numbers(self):
        # §2.3's z contains negatives; parity must be value-based
        assert even_filter(fseq(-1, -2)) == fseq(-2)
        assert odd_filter(fseq(-1, -2)) == fseq(-1)

    def test_lazy(self):
        assert even_filter(LazySeq(itertools.count())).take(3) == \
            fseq(0, 2, 4)


class TestBitFilters:
    def test_true_filter(self):
        assert true_filter(fseq("T", "F", "T")) == fseq("T", "T")

    def test_false_filter(self):
        assert false_filter(fseq("T", "F")) == fseq("F")

    def test_tagged_filter(self):
        s = fseq((0, 5), (1, 6), (0, 7))
        assert tagged_filter(0, s) == fseq((0, 5), (0, 7))
        assert tagged_filter(1, s) == fseq((1, 6))

    def test_tagged_filter_ignores_untagged(self):
        assert tagged_filter(0, fseq(5)) == EMPTY


class TestPointwiseMaps:
    def test_scale(self):
        assert scale(2, fseq(1, 2)) == fseq(2, 4)

    def test_affine(self):
        # §2.3's 2×d + 1
        assert affine(2, 1, fseq(0, 1)) == fseq(1, 3)

    def test_tag_untag_roundtrip(self):
        tagged = tag_with(1, fseq(5, 6))
        assert tagged == fseq((1, 5), (1, 6))
        assert untag(tagged) == fseq(5, 6)


class TestUntilFirstF:
    def test_stops_at_f(self):
        assert until_first_f(fseq("T", "T", "F", "T")) == \
            fseq("T", "T")

    def test_no_f(self):
        assert until_first_f(fseq("T", "T")) == fseq("T", "T")

    def test_empty(self):
        assert until_first_f(EMPTY) == EMPTY


class TestCountTicks:
    def test_counts_before_first_f(self):
        assert count_ticks(fseq("T", "T", "F")) == fseq(2)

    def test_no_output_before_f(self):
        # monotonicity requires ε until the F commits the count
        assert count_ticks(fseq("T", "T")) == EMPTY

    def test_zero(self):
        assert count_ticks(fseq("F")) == fseq(0)

    def test_frozen_after_f(self):
        assert count_ticks(fseq("T", "F", "T", "F")) == fseq(1)

    def test_lazy(self):
        src = LazySeq(iter(["T", "F", "T"]))
        assert count_ticks(src).to_finite(10) == fseq(1)

    def test_lazy_without_f_produces_nothing_yet(self):
        src = LazySeq(iter(["T", "T"]))
        assert count_ticks(src).to_finite(10) == EMPTY

    def test_monotone(self):
        prefixes = [fseq(*"TT"), fseq(*"TTF"), fseq(*"TTFT")]
        outs = [count_ticks(p) for p in prefixes]
        assert outs[0].is_prefix_of(outs[1])
        assert outs[1].is_prefix_of(outs[2])


class TestBrockF:
    def test_paper_definition(self):
        # f(ε) = ε, f(⟨n⟩) = ε, f(n; m; x) = ⟨n+1⟩
        assert brock_f(EMPTY) == EMPTY
        assert brock_f(fseq(0)) == EMPTY
        assert brock_f(fseq(0, 2)) == fseq(1)
        assert brock_f(fseq(0, 2, 9, 9)) == fseq(1)

    def test_lazy(self):
        assert brock_f(LazySeq(iter([5, 0]))).to_finite(5) == fseq(6)
        assert brock_f(LazySeq(iter([5]))).to_finite(5) == EMPTY

    def test_as_trace_fn(self):
        f = brock_f_of(chan(D))
        t = Trace.from_pairs([(D, 0), (D, 2)])
        assert f.apply(t).take(5) == fseq(1)


class TestSelectByOracle:
    def test_routing(self):
        out = select_by_oracle(fseq(1, 2, 3), fseq("T", "F", "T"), "T")
        assert out == fseq(1, 3)

    def test_monotone_in_both(self):
        f = lambda s, o: select_by_oracle(s, o, "T")
        assert f(fseq(1), fseq("T")).is_prefix_of(
            f(fseq(1, 2), fseq("T", "T"))
        )


class TestTraceLifts:
    def test_even_of_and_odd_of(self):
        t = Trace.from_pairs([(D, 0), (D, 1), (D, 2)])
        assert even_of(chan(D)).apply(t).take(5) == fseq(0, 2)
        assert odd_of(chan(D)).apply(t).take(5) == fseq(1)

    def test_prepend_of(self):
        t = Trace.from_pairs([(D, 1)])
        assert prepend_of(0, chan(D)).apply(t).take(5) == fseq(0, 1)

    def test_prepend_block_of(self):
        t = Trace.from_pairs([(D, 1)])
        f = prepend_block_of((7, 8), chan(D))
        assert f.apply(t).take(5) == fseq(7, 8, 1)

    def test_lift_supports(self):
        assert even_of(chan(D)).support == frozenset({D})
