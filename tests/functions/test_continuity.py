"""Continuity validation of every catalog function (§3's standing
assumption, checked empirically)."""

import pytest

from repro.channels.channel import Channel
from repro.functions.base import ProjectionFn, chan, const_seq, tuple_fn
from repro.functions.continuity import (
    check_continuous_fn,
    check_fn_monotone,
)
from repro.functions.logic import and_of, r_of
from repro.functions.seq_fns import (
    affine_of,
    brock_f_of,
    count_ticks_of,
    even_of,
    false_of,
    odd_of,
    prepend_of,
    scale_of,
    select_of,
    tag_of,
    tagged_of,
    true_of,
    untag_of,
    until_first_f_of,
)
from repro.order.checks import LawViolation
from repro.seq.finite import fseq
from repro.seq.ordering import SequenceCpo
from repro.traces.trace import Trace

D = Channel("d", alphabet={0, 1, 2, 3})
BIT = Channel("bit", alphabet={"T", "F"})
TAGGED = Channel("tg", alphabet={(0, 0), (0, 1), (1, 0), (1, 1)})


def int_traces():
    return [
        Trace.empty(),
        Trace.from_pairs([(D, 0), (D, 1), (D, 2), (D, 3)]),
        Trace.from_pairs([(D, 3), (D, 2), (D, 0)]),
        Trace.cycle_pairs([(D, 1), (D, 2)]),
    ]


def bit_traces():
    return [
        Trace.empty(),
        Trace.from_pairs([(BIT, "T"), (BIT, "F"), (BIT, "T")]),
        Trace.from_pairs([(BIT, "F"), (BIT, "F")]),
        Trace.cycle_pairs([(BIT, "T"), (BIT, "F")]),
    ]


def mixed_bit_traces():
    return [
        Trace.empty(),
        Trace.from_pairs(
            [(BIT, "T"), (D, 1), (BIT, "F"), (D, 2), (D, 3)]
        ),
        Trace.from_pairs([(D, 0), (BIT, "T")]),
    ]


INT_FNS = [
    chan(D),
    even_of(chan(D)),
    odd_of(chan(D)),
    scale_of(2, chan(D)),
    affine_of(2, 1, chan(D)),
    prepend_of(0, scale_of(2, chan(D))),
    brock_f_of(chan(D)),
    tag_of(0, chan(D)),
    const_seq(fseq(1, 2)),
    ProjectionFn(frozenset({D})),
]

BIT_FNS = [
    r_of(chan(BIT)),
    true_of(chan(BIT)),
    false_of(chan(BIT)),
    until_first_f_of(chan(BIT)),
    count_ticks_of(chan(BIT)),
]

MIXED_FNS = [
    and_of(chan(BIT), r_of(chan(BIT))),
    select_of(chan(D), chan(BIT), "T"),
    select_of(chan(D), chan(BIT), "F"),
    tuple_fn(chan(D), chan(BIT)),
]


@pytest.mark.parametrize("fn", INT_FNS, ids=lambda f: f.name)
def test_integer_catalog_continuous(fn):
    check_continuous_fn(fn, int_traces(), depth=10)


@pytest.mark.parametrize("fn", BIT_FNS, ids=lambda f: f.name)
def test_bit_catalog_continuous(fn):
    check_continuous_fn(fn, bit_traces(), depth=10)


@pytest.mark.parametrize("fn", MIXED_FNS, ids=lambda f: f.name)
def test_mixed_catalog_continuous(fn):
    check_continuous_fn(fn, mixed_bit_traces(), depth=10)


def test_untag_continuous():
    fn = untag_of(chan(TAGGED))
    traces = [
        Trace.empty(),
        Trace.from_pairs([(TAGGED, (0, 1)), (TAGGED, (1, 0))]),
    ]
    check_continuous_fn(fn, traces, depth=6)


def test_tagged_of_continuous():
    fn = tagged_of(0, chan(TAGGED))
    traces = [
        Trace.empty(),
        Trace.from_pairs([(TAGGED, (0, 1)), (TAGGED, (1, 0))]),
    ]
    check_continuous_fn(fn, traces, depth=6)


def test_detector_catches_non_monotone_impostor():
    """The harness itself must be able to fail: last-element extraction
    is not monotone under prefix order."""
    from repro.functions.base import LambdaFn

    def last_element(t):
        if t.length() == 0:
            return fseq()
        return fseq(t.item(t.length() - 1).message)

    impostor = LambdaFn("last", last_element, SequenceCpo())
    with pytest.raises(LawViolation):
        check_fn_monotone(impostor, [
            Trace.from_pairs([(D, 0), (D, 1)]),
        ])
