"""Unit tests for repro.functions.base (the expression language)."""

import pytest

from repro.channels.channel import Channel
from repro.functions.base import (
    ChannelFn,
    ConstFn,
    IdentityFn,
    LambdaFn,
    OpFn,
    ProjectionFn,
    TupleFn,
    are_independent,
    chan,
    const_seq,
    tuple_fn,
)
from repro.functions.seq_fns import even_of, prepend_of
from repro.order.product import ProductCpo
from repro.seq.finite import EMPTY, fseq
from repro.seq.ordering import SequenceCpo
from repro.traces.trace import Trace

B = Channel("b", alphabet={0, 2})
C = Channel("c", alphabet={1, 3})


def t_of(*pairs):
    return Trace.from_pairs(pairs)


class TestChannelFn:
    def test_extracts_channel_sequence(self):
        f = chan(B)
        t = t_of((B, 0), (C, 1), (B, 2))
        assert f.apply(t).take(10) == fseq(0, 2)

    def test_support(self):
        assert chan(B).support == frozenset({B})

    def test_apply_env(self):
        assert chan(B).apply_env({B: fseq(0)}) == fseq(0)

    def test_apply_env_missing_channel(self):
        with pytest.raises(KeyError):
            chan(B).apply_env({C: fseq(1)})

    def test_substitute_self(self):
        replacement = const_seq(fseq(9))
        assert chan(B).substitute(B, replacement) is replacement

    def test_substitute_other(self):
        f = chan(B)
        assert f.substitute(C, const_seq(EMPTY)) is f


class TestConstFn:
    def test_ignores_trace(self):
        k = const_seq(fseq(7))
        assert k.apply(t_of((B, 0))) == fseq(7)
        assert k.apply(Trace.empty()) == fseq(7)

    def test_empty_support(self):
        assert const_seq(EMPTY).support == frozenset()

    def test_substitution_identity(self):
        k = const_seq(fseq(7))
        assert k.substitute(B, chan(C)) is k

    def test_apply_env(self):
        assert const_seq(fseq(7)).apply_env({}) == fseq(7)


class TestProjectionFn:
    def test_projects(self):
        f = ProjectionFn(frozenset({B}))
        t = t_of((B, 0), (C, 1))
        assert f.apply(t) == t_of((B, 0))

    def test_substitute_inside_raises(self):
        f = ProjectionFn(frozenset({B}))
        with pytest.raises(ValueError):
            f.substitute(B, const_seq(EMPTY))

    def test_substitute_outside_is_noop(self):
        f = ProjectionFn(frozenset({B}))
        assert f.substitute(C, const_seq(EMPTY)) is f


class TestIdentityFn:
    def test_identity(self):
        f = IdentityFn()
        t = t_of((B, 0))
        assert f.apply(t) is t

    def test_substitution_rejected(self):
        with pytest.raises(ValueError):
            IdentityFn().substitute(B, const_seq(EMPTY))

    def test_env_rejected(self):
        with pytest.raises(TypeError):
            IdentityFn().apply_env({})


class TestOpFn:
    def test_composition(self):
        f = even_of(chan(B))
        t = t_of((B, 0), (B, 2))
        assert f.apply(t).take(10) == fseq(0, 2)

    def test_support_union(self):
        from repro.functions.logic import and_of

        f = and_of(chan(B), chan(C))
        assert f.support == frozenset({B, C})

    def test_requires_args(self):
        with pytest.raises(ValueError):
            OpFn("bad", lambda: EMPTY, [])

    def test_substitute_recurses(self):
        g = prepend_of(0, chan(B))
        g2 = g.substitute(B, const_seq(fseq(5)))
        assert g2.apply(Trace.empty()).take(5) == fseq(0, 5)

    def test_substitute_noop_returns_self(self):
        g = prepend_of(0, chan(B))
        assert g.substitute(C, const_seq(EMPTY)) is g

    def test_apply_env(self):
        g = prepend_of(0, chan(B))
        assert g.apply_env({B: fseq(4)}).take(5) == fseq(0, 4)


class TestTupleFn:
    def test_pairs_values(self):
        f = tuple_fn(chan(B), chan(C))
        t = t_of((B, 0), (C, 1))
        got = f.apply(t)
        assert got[0].take(5) == fseq(0)
        assert got[1].take(5) == fseq(1)

    def test_product_codomain(self):
        f = tuple_fn(chan(B), chan(C))
        assert isinstance(f.codomain, ProductCpo)
        assert f.codomain.arity == 2

    def test_requires_components(self):
        with pytest.raises(ValueError):
            TupleFn([])

    def test_substitute(self):
        f = tuple_fn(chan(B), chan(C))
        f2 = f.substitute(B, const_seq(fseq(9)))
        assert f2.apply(Trace.empty())[0] == fseq(9)

    def test_apply_env(self):
        f = tuple_fn(chan(B), chan(C))
        got = f.apply_env({B: fseq(0), C: fseq(1)})
        assert got == (fseq(0), fseq(1))


class TestLambdaFn:
    def test_opaque_application(self):
        f = LambdaFn("len", lambda t: fseq(t.length()), SequenceCpo())
        assert f.apply(t_of((B, 0))) == fseq(1)

    def test_substitution_outside_declared_support(self):
        f = LambdaFn("k", lambda t: EMPTY, SequenceCpo(),
                     support=frozenset({C}))
        assert f.substitute(B, const_seq(EMPTY)) is f

    def test_substitution_inside_rejected(self):
        f = LambdaFn("k", lambda t: EMPTY, SequenceCpo())
        with pytest.raises(ValueError):
            f.substitute(B, const_seq(EMPTY))


class TestIndependence:
    def test_disjoint_supports(self):
        assert are_independent(chan(B), chan(C))

    def test_shared_support(self):
        assert not are_independent(chan(B), even_of(chan(B)))

    def test_unknown_support(self):
        f = LambdaFn("k", lambda t: EMPTY, SequenceCpo())
        assert not are_independent(f, chan(B))

    def test_depends_only_on(self):
        assert chan(B).depends_only_on(frozenset({B, C}))
        assert not chan(B).depends_only_on(frozenset({C}))

    def test_independent_of(self):
        assert chan(B).independent_of(C)
        assert not chan(B).independent_of(B)
