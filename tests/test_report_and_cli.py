"""Tests for repro.report and the ``python -m repro`` CLI."""

import pytest

from repro.channels.channel import Channel
from repro.core.description import Description, DescriptionSystem, combine
from repro.core.solver import solve
from repro.functions.base import chan
from repro.functions.seq_fns import even_of, odd_of
from repro.kahn.agents import dfm_agent, source_agent
from repro.kahn.scheduler import RandomOracle, run_network
from repro.report import (
    render_description,
    render_run,
    render_solver_result,
    render_system,
    render_table,
    render_trace,
    render_verdict,
)
from repro.traces.trace import Trace

B = Channel("b", alphabet={0, 2})
C = Channel("c", alphabet={1, 3})
D = Channel("d", alphabet={0, 1, 2, 3})


def dfm():
    return combine([
        Description(even_of(chan(D)), chan(B)),
        Description(odd_of(chan(D)), chan(C)),
    ], name="dfm")


class TestRenderers:
    def test_render_trace_empty(self):
        assert render_trace(Trace.empty()) == "ε"

    def test_render_trace_finite(self):
        t = Trace.from_pairs([(B, 0), (D, 0)])
        assert render_trace(t) == "(b,0)(d,0)"

    def test_render_trace_truncates(self):
        t = Trace.from_pairs([(B, 0)] * 20)
        assert render_trace(t, max_events=3).endswith("…")

    def test_render_trace_lazy(self):
        t = Trace.cycle_pairs([(B, 0)])
        assert render_trace(t, max_events=2).endswith("…")

    def test_render_description(self):
        text = render_description(
            Description(even_of(chan(D)), chan(B))
        )
        assert "⟵" in text and "{b,d}" in text

    def test_render_system(self):
        system = DescriptionSystem(
            [Description(even_of(chan(D)), chan(B))],
            channels=[B, D], name="s",
        )
        assert "system 's'" in render_system(system)

    def test_render_verdict_positive(self):
        verdict = dfm().check(Trace.from_pairs([(B, 0), (D, 0)]))
        text = render_verdict(verdict)
        assert "SMOOTH SOLUTION" in text

    def test_render_verdict_negative(self):
        verdict = dfm().check(Trace.from_pairs([(D, 0)]))
        text = render_verdict(verdict)
        assert "violation" in text
        assert "not a solution" in text

    def test_render_verdict_truncates_violations(self):
        t = Trace.from_pairs([(D, 0), (D, 1), (D, 2), (D, 3),
                              (D, 0), (D, 1)])
        verdict = dfm().check(t)
        assert "more" in render_verdict(verdict)

    def test_render_solver_result(self):
        result = solve(dfm(), [B, C, D], max_depth=2)
        text = render_solver_result(result, max_listed=2)
        assert "explored" in text
        assert "…" in text or "solutions" in text

    def test_render_run(self):
        result = run_network(
            {"eb": source_agent(B, [0]),
             "dfm": dfm_agent(B, C, D)},
            [B, C, D], RandomOracle(0), max_steps=50,
        )
        text = render_run(result)
        assert "quiescent" in text

    def test_render_table_alignment(self):
        table = render_table(["a", "bb"], [["x", "y"], ["zz", "w"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line.rstrip()) for line in lines[:2])) >= 1


class TestCli:
    @pytest.mark.parametrize(
        "command", ["summary", "dfm", "anomaly", "fig3", "zoo"]
    )
    def test_commands_run(self, command, capsys):
        from repro.__main__ import main

        assert main([command]) == 0
        out = capsys.readouterr().out
        assert out.strip()

    def test_default_is_summary(self, capsys):
        from repro.__main__ import main

        assert main([]) == 0
        assert "PODC" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["nonsense"])
