"""Tests for repro.report and the ``python -m repro`` CLI."""

import pytest

from repro.channels.channel import Channel
from repro.channels.event import Event
from repro.core.description import Description, DescriptionSystem, combine
from repro.core.solver import solve
from repro.functions.base import chan
from repro.functions.seq_fns import even_of, odd_of
from repro.kahn.agents import dfm_agent, source_agent
from repro.kahn.scheduler import RandomOracle, run_network
from repro.report import (
    render_description,
    render_metrics,
    render_run,
    render_run_diff,
    render_schedule,
    render_schedule_diff,
    render_solver_result,
    render_system,
    render_table,
    render_trace,
    render_verdict,
)
from repro.traces.trace import Trace

B = Channel("b", alphabet={0, 2})
C = Channel("c", alphabet={1, 3})
D = Channel("d", alphabet={0, 1, 2, 3})


def dfm():
    return combine([
        Description(even_of(chan(D)), chan(B)),
        Description(odd_of(chan(D)), chan(C)),
    ], name="dfm")


class TestRenderers:
    def test_render_trace_empty(self):
        assert render_trace(Trace.empty()) == "ε"

    def test_render_trace_finite(self):
        t = Trace.from_pairs([(B, 0), (D, 0)])
        assert render_trace(t) == "(b,0)(d,0)"

    def test_render_trace_truncates(self):
        t = Trace.from_pairs([(B, 0)] * 20)
        assert render_trace(t, max_events=3).endswith("…")

    def test_render_trace_lazy(self):
        t = Trace.cycle_pairs([(B, 0)])
        assert render_trace(t, max_events=2).endswith("…")

    def test_render_trace_short_lazy_not_marked_truncated(self):
        # a lazy trace that exhausts before the cap is NOT truncated
        t = Trace.lazy(iter([Event(B, 0), Event(D, 0)]))
        assert render_trace(t, max_events=16) == "(b,0)(d,0)"

    def test_render_trace_lazy_exactly_at_cap(self):
        t = Trace.lazy(iter([Event(B, 0), Event(B, 0)]))
        assert render_trace(t, max_events=2) == "(b,0)(b,0)"

    def test_render_trace_lazy_one_past_cap(self):
        t = Trace.lazy(iter([Event(B, 0)] * 3))
        rendered = render_trace(t, max_events=2)
        assert rendered == "(b,0)(b,0)…"

    def test_render_trace_empty_lazy(self):
        t = Trace.lazy(iter([]))
        assert render_trace(t) == "ε"

    def test_render_trace_finite_exactly_at_cap(self):
        t = Trace.from_pairs([(B, 0), (B, 2)])
        assert render_trace(t, max_events=2) == "(b,0)(b,2)"

    def test_render_description(self):
        text = render_description(
            Description(even_of(chan(D)), chan(B))
        )
        assert "⟵" in text and "{b,d}" in text

    def test_render_system(self):
        system = DescriptionSystem(
            [Description(even_of(chan(D)), chan(B))],
            channels=[B, D], name="s",
        )
        assert "system 's'" in render_system(system)

    def test_render_verdict_positive(self):
        verdict = dfm().check(Trace.from_pairs([(B, 0), (D, 0)]))
        text = render_verdict(verdict)
        assert "SMOOTH SOLUTION" in text

    def test_render_verdict_negative(self):
        verdict = dfm().check(Trace.from_pairs([(D, 0)]))
        text = render_verdict(verdict)
        assert "violation" in text
        assert "not a solution" in text

    def test_render_verdict_truncates_violations(self):
        t = Trace.from_pairs([(D, 0), (D, 1), (D, 2), (D, 3),
                              (D, 0), (D, 1)])
        verdict = dfm().check(t)
        assert "more" in render_verdict(verdict)

    def test_render_solver_result(self):
        result = solve(dfm(), [B, C, D], max_depth=2)
        text = render_solver_result(result, max_listed=2)
        assert "explored" in text
        assert "…" in text or "solutions" in text

    def test_render_run(self):
        result = run_network(
            {"eb": source_agent(B, [0]),
             "dfm": dfm_agent(B, C, D)},
            [B, C, D], RandomOracle(0), max_steps=50,
        )
        text = render_run(result)
        assert "quiescent" in text

    def test_render_table_alignment(self):
        table = render_table(["a", "bb"], [["x", "y"], ["zz", "w"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line.rstrip()) for line in lines[:2])) >= 1

    def test_render_run_shows_failed_agents(self):
        from repro.kahn.effects import Send

        def crasher():
            yield Send(B, 0)
            raise ValueError("kaput")

        result = run_network({"crash": crasher()}, [B],
                             RandomOracle(0), max_steps=10)
        text = render_run(result)
        assert "failed:  crash" in text

    def test_render_solver_result_reflects_fields(self):
        # round-trip: every headline number appears in the rendering
        result = solve(dfm(), [B, C, D], max_depth=3)
        text = render_solver_result(result, max_listed=100)
        assert str(result.nodes_explored) in text
        assert str(len(result.finite_solutions)) in text
        for t in result.finite_solutions:
            assert render_trace(t) in text

    def test_render_verdict_roundtrips_trace(self):
        t = Trace.from_pairs([(B, 0), (D, 0)])
        text = render_verdict(dfm().check(t))
        assert render_trace(t) in text
        assert "dfm" in text

    def test_render_metrics_counters_and_stats(self):
        text = render_metrics({
            "solver.nodes_expanded": 7,
            "solver.branching": {"count": 3, "mean": 2.5,
                                 "min": 1, "max": 4,
                                 "buckets": {"1": 3}},
        })
        assert "solver.nodes_expanded" in text and "7" in text
        assert "mean=2.5" in text
        assert "buckets" not in text  # too noisy for the one-liner

    def test_render_metrics_empty(self):
        assert "none recorded" in render_metrics({})

    def test_render_metrics_golden_sorted(self):
        # keys arrive in insertion order; output must be sorted, so
        # two runs of the same network render identically
        text = render_metrics({"z.last": 1, "a.first": 2},
                              title="m")
        assert text == ("m:\n"
                        "  a.first                          2\n"
                        "  z.last                           1")

    def test_render_schedule_golden(self):
        from repro.obs import Schedule

        s = Schedule(
            agent_picks=[["snd", ["snd", "rcv"]],
                         ["rcv", ["rcv"]]],
            choice_picks=[[1, 2, "snd"]],
            rng_draws=[["data:DropFault", "random", 0.25]],
            meta={"seed": 3, "plan": "drop"},
        )
        text = render_schedule(s)
        assert text == (
            f"schedule (4 decisions, digest {s.digest()[:12]})\n"
            "  meta plan               drop\n"
            "  meta seed               3\n"
            "  agent_picks (2):\n"
            "    [0] snd  (ready: snd, rcv)\n"
            "    [1] rcv  (ready: rcv)\n"
            "  choice_picks (1):\n"
            "    [0] branch 1/2 in snd\n"
            "  rng_draws (1):\n"
            "    [0] data:DropFault random -> 0.25"
        )

    def test_render_schedule_truncates(self):
        from repro.obs import Schedule

        s = Schedule(agent_picks=[["a", ["a"]]] * 10)
        text = render_schedule(s, max_decisions=3)
        assert "… 7 more" in text

    def test_render_schedule_diff(self):
        from repro.obs import Schedule, diff_schedules

        a = Schedule(agent_picks=[["x", ["x", "y"]]])
        b = Schedule(agent_picks=[["y", ["x", "y"]]])
        text = render_schedule_diff(diff_schedules(a, b))
        assert "agent_picks[0]" in text
        assert render_schedule_diff(diff_schedules(a, a.copy())) \
            == "schedules identical"

    def test_render_run_diff(self):
        a = run_network(
            {"eb": source_agent(B, [0, 2]), "dfm": dfm_agent(B, C, D)},
            [B, C, D], RandomOracle(7))
        b = run_network(
            {"eb": source_agent(B, [0, 2]), "dfm": dfm_agent(B, C, D)},
            [B, C, D], RandomOracle(7))
        from repro.obs import diff_runs

        assert "identical" in render_run_diff(diff_runs(a, b))


class TestCli:
    @pytest.mark.parametrize(
        "command", ["summary", "dfm", "anomaly", "fig3", "zoo"]
    )
    def test_commands_run(self, command, capsys):
        from repro.__main__ import main

        assert main([command]) == 0
        out = capsys.readouterr().out
        assert out.strip()

    def test_default_is_summary(self, capsys):
        from repro.__main__ import main

        assert main([]) == 0
        assert "PODC" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["nonsense"])


class TestTraceCli:
    @pytest.mark.parametrize("example", ["alternating_bit", "dfm"])
    def test_trace_writes_perfetto_json(self, example, tmp_path,
                                        capsys):
        import json

        from repro.__main__ import main

        out = tmp_path / f"{example}.perfetto.json"
        assert main(["trace", example, "-o", str(out)]) == 0
        assert "wrote" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        assert events
        cats = {e.get("cat") for e in events}
        assert "solver" in cats
        assert "scheduler" in cats

    def test_abp_trace_has_fault_spans_and_jsonl(self, tmp_path,
                                                 capsys):
        import json

        from repro.__main__ import main

        out = tmp_path / "abp.perfetto.json"
        jsonl = tmp_path / "abp.jsonl"
        assert main(["trace", "alternating_bit", "-o", str(out),
                     "--jsonl", str(jsonl)]) == 0
        del capsys  # output checked via files
        doc = json.loads(out.read_text())
        cats = {e.get("cat") for e in doc["traceEvents"]}
        assert {"solver", "scheduler", "fault", "runtime"} <= cats
        lines = jsonl.read_text().splitlines()
        assert lines
        for line in lines:
            json.loads(line)

    def test_trace_rejects_unknown_example(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["trace", "not_an_example"])


class TestRecorderCli:
    def _record(self, tmp_path, *extra):
        from repro.__main__ import main

        out = tmp_path / "run.schedule.json"
        assert main(["record", "dfm", "--plan", "drop",
                     "--seed", "11", "-o", str(out), *extra]) == 0
        return out

    def test_record_writes_schedule_json(self, tmp_path, capsys):
        import json

        out = self._record(tmp_path)
        doc = json.loads(out.read_text())
        assert doc["version"] == 1
        assert doc["meta"]["scenario"] == "dfm"
        assert doc["agent_picks"]
        assert "recorded" in capsys.readouterr().out

    def test_replay_matches_exit_zero(self, tmp_path, capsys):
        from repro.__main__ import main

        out = self._record(tmp_path)
        assert main(["replay", str(out)]) == 0
        assert "MATCHES" in capsys.readouterr().out

    def test_replay_tampered_exit_nonzero(self, tmp_path, capsys):
        import json

        from repro.__main__ import main

        out = self._record(tmp_path)
        doc = json.loads(out.read_text())
        doc["meta"]["digest"] = "0" * 64
        out.write_text(json.dumps(doc))
        assert main(["replay", str(out), "--lenient"]) == 1
        assert "DIVERGED" in capsys.readouterr().out

    def test_diff_identical_and_divergent(self, tmp_path, capsys):
        from repro.__main__ import main

        a = tmp_path / "a.schedule.json"
        b = tmp_path / "b.schedule.json"
        assert main(["record", "dfm", "--plan", "drop",
                     "--seed", "11", "-o", str(a)]) == 0
        assert main(["record", "dfm", "--plan", "drop",
                     "--seed", "12", "-o", str(b)]) == 0
        assert main(["diff", str(a), str(a)]) == 0
        assert main(["diff", str(a), str(b)]) == 1
        assert "identical" in capsys.readouterr().out

    def test_record_abp_and_shrink(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "abp.schedule.json"
        assert main(["record", "alternating_bit",
                     "--plan", "black-hole", "--seed", "0",
                     "--max-steps", "2000", "-o", str(out)]) == 0
        assert "livelock" in capsys.readouterr().out
        small = tmp_path / "abp.min.json"
        assert main(["shrink", str(out), "-o", str(small)]) == 0
        assert "shrunk" in capsys.readouterr().out
        # the minimal schedule still replays (leniently) to the
        # recorded verdict
        assert main(["replay", str(small), "--lenient"]) == 0
        assert "livelock" in capsys.readouterr().out

    def test_record_rejects_unknown_scenario(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["record", "not_a_scenario"])

    def test_record_rejects_unknown_plan(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "x.json"
        assert main(["record", "alternating_bit", "--plan", "bogus",
                     "-o", str(out)]) == 2
        assert "unknown plan" in capsys.readouterr().err


class TestSolveCli:
    def test_complete_run_exits_zero(self, capsys):
        from repro.__main__ import main

        assert main(["solve", "dfm", "--depth", "3"]) == 0
        out = capsys.readouterr().out
        assert "finite smooth solutions" in out
        assert "result digest" in out

    def test_truncated_run_exits_one_and_checkpoints(self, tmp_path,
                                                     capsys):
        from repro.__main__ import main

        ck = tmp_path / "ck.json"
        assert main(["solve", "dfm", "--depth", "4",
                     "--max-nodes", "25",
                     "--checkpoint-out", str(ck)]) == 1
        assert "TRUNCATED" in capsys.readouterr().out
        assert ck.exists()

    def test_resume_reaches_straight_run_digest(self, tmp_path,
                                                capsys):
        from repro.__main__ import main

        assert main(["solve", "dfm", "--depth", "4"]) == 0
        straight = capsys.readouterr().out
        ck = tmp_path / "ck.json"
        assert main(["solve", "dfm", "--depth", "4",
                     "--max-nodes", "25",
                     "--checkpoint-out", str(ck)]) == 1
        capsys.readouterr()
        assert main(["solve", "dfm", "--depth", "4",
                     "--resume", str(ck)]) == 0
        resumed = capsys.readouterr().out
        digest = [line for line in straight.splitlines()
                  if line.startswith("result digest")]
        assert digest and digest[0] in resumed

    def test_bad_checkpoint_exits_two(self, tmp_path, capsys):
        from repro.__main__ import main

        bad = tmp_path / "bad.json"
        bad.write_text('{"depth": 4}', encoding="utf-8")
        assert main(["solve", "dfm", "--resume", str(bad)]) == 2
        assert "version" in capsys.readouterr().err

    def test_solver_cache_round_trip(self, tmp_path, capsys):
        from repro.__main__ import main

        args = ["solve", "dfm", "--depth", "3", "--cache",
                "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        assert "miss 1, write 1" in capsys.readouterr().out
        assert main(args) == 0
        assert "hit 1" in capsys.readouterr().out


class TestGridCacheCli:
    def _grid(self, tmp_path, *extra):
        return ["grid", "dfm", "--seeds", "1", "--plan", "none",
                "--cache", "--cache-dir", str(tmp_path), *extra]

    def test_warm_rerun_same_digest_all_cached(self, tmp_path,
                                               capsys):
        from repro.__main__ import main

        assert main(self._grid(tmp_path)) == 0
        cold = capsys.readouterr().out
        assert main(self._grid(tmp_path)) == 0
        warm = capsys.readouterr().out

        def digest_line(text):
            return [line for line in text.splitlines()
                    if line.startswith("report digest")][0]

        assert digest_line(cold) == digest_line(warm)
        assert "(1 cached)" in warm
        assert "served from cache" in warm

    def test_cache_stats_json(self, tmp_path, capsys):
        import json

        from repro.__main__ import main

        assert main(self._grid(tmp_path, "--cache-stats")) == 0
        out = capsys.readouterr().out
        start = out.index("{")
        stats = json.loads(out[start:])
        assert stats["entries"] == {"cell": 1}
        assert stats["counters"]["write"] == 1

    def test_empty_grid_exits_zero(self, capsys):
        from repro.__main__ import main

        assert main(["grid", "dfm", "--seeds", "0"]) == 0
        assert "0 cells" in capsys.readouterr().out


class TestFleetCli:
    """The supervised-grid CLI surface: chaos self-test, quarantine
    bundles, exit-status semantics, bundle replay."""

    FORK = "fork" in __import__(
        "multiprocessing").get_all_start_methods()

    @pytest.fixture
    def chaos_run(self, tmp_path, capsys):
        if not self.FORK:
            pytest.skip("fleet executor requires fork")
        from repro.__main__ import main

        qdir = tmp_path / "quarantine"
        code = main(["grid", "dfm", "--workers", "2", "--seeds", "1",
                     "--plan", "none", "--retries", "1",
                     "--chaos", "kill-worker:1.0",
                     "--quarantine-dir", str(qdir)])
        return code, capsys.readouterr().out, qdir

    def test_chaos_kills_degrade_but_exit_zero(self, chaos_run):
        # infrastructure kills are not non-conformance: exit 0
        code, out, _ = chaos_run
        assert code == 0
        assert "DEGRADED" in out
        assert "quarantined" in out
        assert "chaos: kill-worker:1.0" in out
        assert "surviving digest" in out

    def test_bundle_replay_reproduces(self, chaos_run, capsys):
        from repro.__main__ import main

        _, _, qdir = chaos_run
        [bundle] = sorted(qdir.iterdir())
        assert main(["replay", str(bundle)]) == 0
        out = capsys.readouterr().out
        assert "REPRODUCES" in out
        assert "crashed" in out

    def test_genuine_failure_still_exits_one(self, capsys):
        if not self.FORK:
            pytest.skip("fleet executor requires fork")
        from repro.__main__ import main

        # black-box: a too-small step budget exhausts cells, which IS
        # a genuine (non-infra) failure and must fail the exit status
        code = main(["grid", "dfm", "--workers", "2", "--seeds", "1",
                     "--max-steps", "3", "--cell-timeout", "60"])
        out = capsys.readouterr().out
        assert code == 1
        assert "exhausted" in out
        assert "DEGRADED" not in out

    def test_bad_chaos_spec_exits_two(self, capsys):
        from repro.__main__ import main

        assert main(["grid", "dfm", "--chaos", "eat-disk:0.5"]) == 2
        assert "unknown chaos" in capsys.readouterr().err

    def test_schedule_replay_still_works(self, tmp_path, capsys):
        # the replay command sniffs bundles without breaking its
        # original contract: schedule JSONs replay as before
        from repro.__main__ import main

        out_path = tmp_path / "s.json"
        assert main(["record", "dfm", "--seed", "3",
                     "-o", str(out_path)]) == 0
        capsys.readouterr()
        assert main(["replay", str(out_path)]) == 0
        assert "MATCHES" in capsys.readouterr().out

    def test_solve_fsync_checkpoint(self, tmp_path, capsys):
        from repro.__main__ import main

        ck = tmp_path / "ck.json"
        assert main(["solve", "dfm", "--depth", "3", "--fsync",
                     "--cache", "--cache-dir", str(tmp_path / "c"),
                     "--checkpoint-out", str(ck)]) == 0
        assert ck.exists()
        assert "wrote checkpoint" in capsys.readouterr().out


class TestRenderMetricsQuantiles:
    def test_histogram_summary_shows_quantiles(self):
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        h = reg.histogram("solver.branching")
        for v in (1, 2, 3, 10):
            h.record(v)
        text = render_metrics(reg.summary())
        assert "p50=2" in text
        assert "p90=10" in text
        assert "p99=10" in text

    def test_golden_histogram_row(self):
        # the summary's keys render sorted and stable — a golden line
        # that locks the p50/p90/p99 satellite in place
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        reg.histogram("h").record(2)
        text = render_metrics(reg.summary(), title="m")
        assert text == (
            "m:\n"
            "  h                                count=1 max=2 mean=2"
            " min=2 p50=2 p90=2 p99=2 total=2")


class TestRenderFleetStatus:
    def _snapshot(self, **over):
        snap = {
            "scenario": "dfm", "total": 6, "done": 3, "busy": 2,
            "workers": 2, "conforming": 3, "genuine_failures": 0,
            "retries": 1, "timeouts": 0, "crashes": 1,
            "quarantined": 0, "cached": 1, "cache_hit_rate": 0.25,
            "records_streamed": 128, "batches_streamed": 2,
            "elapsed_s": 1.5, "eta_s": 1.5, "finished": False,
        }
        snap.update(over)
        return snap

    def test_golden_running(self):
        from repro.report import render_fleet_status

        text = render_fleet_status(self._snapshot(), width=10)
        assert text == (
            "repro top — grid dfm [running]\n"
            "  [█████·····] 3/6 cells (50%)\n"
            "  workers 2  busy 2  elapsed 1.5s  eta 1.5s\n"
            "  conforming 3  failures 0  quarantined 0\n"
            "  retries 1  timeouts 0  crashes 1\n"
            "  cache hits 1 (25%)  streamed 128 records in 2 batches")

    def test_finished_and_unknowns(self):
        from repro.report import render_fleet_status

        text = render_fleet_status(self._snapshot(
            finished=True, eta_s=None, cache_hit_rate=None))
        assert "[done]" in text
        assert "eta —" in text
        assert "(—)" in text

    def test_empty_snapshot_renders(self):
        from repro.report import render_fleet_status

        text = render_fleet_status({})
        assert "0/0 cells" in text


class TestGridArtifactsCli:
    def test_grid_writes_all_artifacts(self, tmp_path, capsys):
        import json

        from repro.__main__ import main

        html = tmp_path / "r.html"
        prom = tmp_path / "m.prom"
        mjson = tmp_path / "m.json"
        trace = tmp_path / "t.json"
        assert main(["grid", "dfm", "--seeds", "1",
                     "--html-report", str(html),
                     "--metrics-out", str(prom),
                     "--metrics-json", str(mjson),
                     "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "wrote HTML flight-deck report" in out
        assert html.read_text(encoding="utf-8").startswith(
            "<!DOCTYPE html>")
        assert prom.read_text(encoding="utf-8").endswith("\n")
        doc = json.loads(mjson.read_text(encoding="utf-8"))
        assert doc["meta"]["scenario"] == "dfm"
        assert json.loads(
            trace.read_text(encoding="utf-8"))["traceEvents"]

    def test_prometheus_sums_match_grid(self, tmp_path, capsys):
        from repro.__main__ import main

        prom = tmp_path / "m.prom"
        assert main(["grid", "dfm", "--seeds", "1",
                     "--metrics-out", str(prom)]) == 0
        text = prom.read_text(encoding="utf-8")
        # 3 plans × 1 seed; exposition totals agree with the grid
        assert "repro_grid_cells 3" in text
        assert "repro_grid_outcome_conforms 3" in text


class TestBenchCli:
    CORE = {
        "generated_at": "t", "python": "3.11", "platform": "l",
        "rows": [
            {"experiment": "S33-MEMO", "label": "depth", "value": 6},
            {"experiment": "S33-MEMO", "label": "speedup",
             "value": 4.0},
        ],
    }

    def _write_core(self, path, speedup=4.0):
        import copy
        import json

        core = copy.deepcopy(self.CORE)
        core["rows"][1]["value"] = speedup
        path.write_text(json.dumps(core), encoding="utf-8")

    def test_append_then_check_passes(self, tmp_path, capsys):
        from repro.__main__ import main

        core = tmp_path / "core.json"
        hist = tmp_path / "hist.jsonl"
        self._write_core(core)
        assert main(["bench-append", "--core", str(core),
                     "--history", str(hist), "--sha", "abc"]) == 0
        assert "appended" in capsys.readouterr().out
        assert main(["bench-check", "--core", str(core),
                     "--history", str(hist)]) == 0
        assert "bench-check: PASS" in capsys.readouterr().out

    def test_check_fails_on_regression(self, tmp_path, capsys):
        from repro.__main__ import main

        core = tmp_path / "core.json"
        hist = tmp_path / "hist.jsonl"
        self._write_core(core)
        assert main(["bench-append", "--core", str(core),
                     "--history", str(hist), "--sha", "abc"]) == 0
        bad = tmp_path / "bad.json"
        self._write_core(bad, speedup=1.0)
        capsys.readouterr()
        assert main(["bench-check", "--core", str(bad),
                     "--history", str(hist)]) == 1
        out = capsys.readouterr().out
        assert "REGRESS" in out and "FAIL" in out

    def test_empty_history_seeds(self, tmp_path, capsys):
        from repro.__main__ import main

        core = tmp_path / "core.json"
        self._write_core(core)
        assert main(["bench-check", "--core", str(core),
                     "--history", str(tmp_path / "no.jsonl")]) == 0
        assert "SEEDING" in capsys.readouterr().out

    def test_missing_core_exits_two(self, tmp_path, capsys):
        from repro.__main__ import main

        assert main(["bench-check",
                     "--core", str(tmp_path / "absent.json"),
                     "--history", str(tmp_path / "h.jsonl")]) == 2
        assert "cannot load" in capsys.readouterr().err


class TestTopCli:
    def test_top_runs_grid_and_prints_scoreboard(self, capsys):
        # stdout is captured (not a TTY): the scoreboard degrades to
        # one plain line per refresh — no cursor control, CI-safe
        from repro.__main__ import main

        assert main(["top", "dfm", "--seeds", "1", "--workers", "2",
                     "--interval", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "top dfm [" in out
        assert "\x1b[" not in out
        assert "report digest" in out
        # the final refresh reports the finished grid
        lines = [ln for ln in out.splitlines()
                 if ln.startswith("top dfm")]
        assert lines and "[done]" in lines[-1]

    def test_top_rejects_unknown_scenario(self, capsys):
        from repro.__main__ import main

        assert main(["top", "not-a-scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestFleetLine:
    def test_plain_line_format(self):
        from repro.report import render_fleet_line

        snap = {"scenario": "dfm", "total": 8, "done": 4,
                "busy": 2, "workers": 2, "conforming": 3,
                "genuine_failures": 1, "retries": 2, "cached": 1,
                "elapsed_s": 1.25, "eta_s": 1.5, "finished": False}
        line = render_fleet_line(snap)
        assert line == ("top dfm [running] 4/8 (50%) busy 2/2 "
                        "ok 3 fail 1 retry 2 cached 1 "
                        "elapsed 1.2s eta 1.5s")
        assert "\n" not in line and "\x1b" not in line

    def test_finished_and_empty_snapshots(self):
        from repro.report import render_fleet_line

        done = render_fleet_line({"scenario": "dfm", "total": 2,
                                  "done": 2, "finished": True,
                                  "elapsed_s": 0.5})
        assert "[done]" in done and "eta —" in done
        bare = render_fleet_line({})
        assert bare.startswith("top ? [running] 0/0 (0%)")


class TestWhyCli:
    def _pair(self, tmp_path):
        from repro.__main__ import main

        a = tmp_path / "a.schedule.json"
        b = tmp_path / "b.schedule.json"
        assert main(["record", "dfm", "--plan", "drop",
                     "--seed", "11", "-o", str(a)]) == 0
        assert main(["record", "dfm", "--plan", "drop",
                     "--seed", "12", "-o", str(b)]) == 0
        return a, b

    def test_single_schedule_prints_causal_summary(self, tmp_path,
                                                   capsys):
        from repro.__main__ import main

        a, _ = self._pair(tmp_path)
        capsys.readouterr()
        assert main(["why", str(a)]) == 0
        out = capsys.readouterr().out
        assert "causal graph:" in out
        assert "digest" in out
        assert "critical path" in out

    def test_identical_pair_exits_zero(self, tmp_path, capsys):
        from repro.__main__ import main

        a, _ = self._pair(tmp_path)
        capsys.readouterr()
        assert main(["why", str(a), str(a)]) == 0
        assert "causally identical" in capsys.readouterr().out

    def test_divergent_pair_explains_and_exits_one(self, tmp_path,
                                                   capsys):
        from repro.__main__ import main

        a, b = self._pair(tmp_path)
        capsys.readouterr()
        assert main(["why", str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "root cause" in out

    def test_exports_dot_json_trace(self, tmp_path, capsys):
        import json

        from repro.__main__ import main

        a, _ = self._pair(tmp_path)
        dot = tmp_path / "g.dot"
        js = tmp_path / "g.json"
        trace = tmp_path / "g.trace.json"
        assert main(["why", str(a), "--dot", str(dot),
                     "--json", str(js), "--trace", str(trace)]) == 0
        assert dot.read_text().startswith("digraph")
        doc = json.loads(js.read_text())
        assert doc["nodes"] and doc["digest"]
        assert doc["critical_path"]
        events = json.loads(trace.read_text())["traceEvents"]
        phases = {e["ph"] for e in events}
        # flow arrows ride on the timeline as matched s/f pairs
        assert {"s", "f"} <= phases
        starts = [e for e in events if e["ph"] == "s"]
        finishes = {e["id"] for e in events if e["ph"] == "f"}
        assert starts and {e["id"] for e in starts} == finishes

    def test_graph_json_digest_stable_across_reruns(self, tmp_path,
                                                    capsys):
        import json

        from repro.__main__ import main

        a, _ = self._pair(tmp_path)
        j1 = tmp_path / "g1.json"
        j2 = tmp_path / "g2.json"
        assert main(["why", str(a), "--json", str(j1)]) == 0
        assert main(["why", str(a), "--json", str(j2)]) == 0
        assert json.loads(j1.read_text())["digest"] == \
            json.loads(j2.read_text())["digest"]

    def test_diff_explain_names_root_decision(self, tmp_path,
                                              capsys):
        from repro.__main__ import main

        a, b = self._pair(tmp_path)
        capsys.readouterr()
        assert main(["diff", str(a), str(b), "--explain"]) == 1
        out = capsys.readouterr().out
        assert "root cause" in out
        assert "causal chain" in out


class TestSolveProfileCli:
    def test_profile_prints_hotspot_table(self, capsys):
        from repro.__main__ import main

        assert main(["solve", "dfm", "--depth", "3",
                     "--profile"]) == 0
        out = capsys.readouterr().out
        assert "solver hotspots" in out
        assert "rhs.apply" in out
        assert "result digest" in out

    def test_profile_exports(self, tmp_path, capsys):
        import json

        from repro.__main__ import main

        pj = tmp_path / "prof.json"
        folded = tmp_path / "prof.folded"
        assert main(["solve", "dfm", "--depth", "3",
                     "--profile-json", str(pj),
                     "--profile-folded", str(folded)]) == 0
        prof = json.loads(pj.read_text())
        assert prof["g_evaluations"] > 0
        assert prof["sites"]["rhs.apply"]["calls"] == \
            prof["g_evaluations"]
        lines = folded.read_text().splitlines()
        assert lines and all(
            ln.rsplit(" ", 1)[1].isdigit() for ln in lines)

    def test_profile_does_not_change_the_result(self, capsys):
        from repro.__main__ import main

        assert main(["solve", "dfm", "--depth", "3"]) == 0
        plain = capsys.readouterr().out
        assert main(["solve", "dfm", "--depth", "3",
                     "--profile"]) == 0
        profiled = capsys.readouterr().out
        digest = [ln for ln in plain.splitlines()
                  if ln.startswith("result digest")]
        assert digest and digest[0] in profiled
